"""The asyncio HTTP/JSON gateway behind ``repro gateway``.

A production front door for the TCP reservation service: JSON-over-HTTP
endpoints (``POST /v1/reserve|probe|cancel``, ``GET /v1/status``),
bearer-token tenancy with per-tenant token buckets
(:mod:`repro.gateway.auth`), liveness at ``GET /healthz`` and Prometheus
text exposition at ``GET /metrics`` — all stdlib asyncio, no framework.

Request validation is *derived from* the wire registry
(:func:`repro.service.protocol.validate_payload`): the HTTP surface has
no second schema to drift from the NDJSON one.  Responses pass the
backend's JSON body through **verbatim** (the HTTP layer only adds the
status code and headers), so every checksum/ledger tool that reads TCP
responses reads gateway responses unchanged.

Status mapping: ``ok`` and domain *rejections* are 200 (a reject is a
successful decision, not a transport failure); ``MALFORMED`` 400,
``NOT_FOUND`` 404, ``CONFLICT`` 409, ``BUSY`` 429 (with ``Retry-After``
rendered from the admission controller's own ``retry_after`` — one
back-off source, never two), ``SHUTTING_DOWN`` 503, anything else 500; a dead
backend is 502.  The gateway's own token-bucket limit is also 429,
rendered through the same :func:`~repro.gateway.http.format_retry_after`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any

from ..errors import BusyError, error_payload
from ..service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    encode,
    validate_payload,
)
from .auth import TenantLimiter, TokenTable
from .http import (
    MAX_BODY_BYTES,
    HttpError,
    HttpRequest,
    format_retry_after,
    json_response,
    read_request,
    response_bytes,
)
from .prom import PromRegistry

__all__ = ["GatewayConfig", "Gateway", "serve_gateway"]

#: error code -> HTTP status for proxied backend errors
_STATUS_FOR = {
    "MALFORMED": 400,
    "NOT_FOUND": 404,
    "CONFLICT": 409,
    "REJECTED": 200,  # a domain verdict, not a transport failure
    "BUSY": 429,
    "SHUTTING_DOWN": 503,
    "INTERNAL": 500,
}

#: the data-plane ops POSTable under /v1/ (rate-limited per tenant)
_DATA_OPS = ("reserve", "probe", "cancel")

#: pool mutations accepted by POST /v1/admin/scale (authenticated but not
#: rate-limited: an operator shrinking an overloaded pool must get through)
_SCALE_ACTIONS = ("add_servers", "drain", "remove")

#: endpoint label echoed in /v1/admin/scale edge errors raised before the
#: action — the actual wire op — is known; deliberately not a wire op
_SCALE_LABEL = "scale"


@dataclass(slots=True)
class GatewayConfig:
    """Operational knobs for one gateway instance (see ``docs/gateway.md``)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the chosen port is printed on boot
    backend_host: str = "127.0.0.1"
    backend_port: int = 0  # the TCP reservation service to front
    token_file: str | None = None  # token:tenant lines; None = open mode
    rate: float = 1000.0  # tokens/second refill per tenant
    burst: float = 2000.0  # bucket capacity per tenant
    max_body: int = MAX_BODY_BYTES
    status_timeout: float = 2.0  # budget for the backend status probe in /metrics


class Gateway:
    """One HTTP front door over one TCP backend connection."""

    def __init__(self, config: GatewayConfig) -> None:
        self.config = config
        if config.token_file:
            self.tokens = TokenTable.from_file(Path(config.token_file))
        else:
            self.tokens = TokenTable()
        self.limiter = TenantLimiter(config.rate, config.burst)
        self._server: asyncio.base_events.Server | None = None
        #: the single multiplexed backend NDJSON connection (lazily opened,
        #: dropped on any transport error and reopened on the next call)
        self._backend: tuple[asyncio.StreamReader, asyncio.StreamWriter] | None = None
        self._backend_lock = asyncio.Lock()

        self.registry = PromRegistry()
        self.requests_total = self.registry.counter(
            "repro_gateway_requests_total", "Requests by tenant and endpoint"
        )
        self.rejects_total = self.registry.counter(
            "repro_gateway_rejects_total",
            "Requests refused at the edge, by tenant and reason",
        )
        self.replayed_total = self.registry.counter(
            "repro_gateway_replayed_total",
            "Duplicate rids answered from the backend decision log",
        )
        self.latency = self.registry.summary(
            "repro_gateway_request_seconds",
            "Gateway request latency (reservoir percentiles), seconds",
        )
        self.backend_up = self.registry.gauge(
            "repro_gateway_backend_up", "1 when the backend TCP service answers"
        )
        self.service_gauges = {
            name: self.registry.gauge(f"repro_service_{name}", help_text)
            for name, help_text in (
                ("accepted_total", "Backend accepted reservations (sampled)"),
                ("rejected_total", "Backend rejected reservations (sampled)"),
                ("shed_total", "Backend admission sheds (sampled)"),
                ("replayed_total", "Backend decision-log replays (sampled)"),
                ("decided", "Backend decision-table size (sampled)"),
                ("service_latency_ms", "Backend actor service latency, by quantile"),
                ("pool_servers", "Backend pool membership by state (sampled)"),
                ("queue_delay_ewma_ms", "Backend admission queue-delay EWMA (sampled)"),
                ("shed_rate", "Backend admission shed-rate EWMA (sampled)"),
            )
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        assert self._server is not None, "gateway not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_BODY_BYTES,
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._drop_backend()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader, self.config.max_body)
                except HttpError as exc:
                    writer.write(_error_response(exc.status, exc.message, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                started = perf_counter()
                response = await self._dispatch(request)
                self.latency.observe(perf_counter() - started)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, OSError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()

    async def _dispatch(self, request: HttpRequest) -> bytes:
        if request.path == "/healthz":
            if request.method != "GET":
                return _error_response(405, "healthz is GET-only")
            return json_response(200, {"ok": True, "backend": self._backend is not None})
        if request.path == "/metrics":
            if request.method != "GET":
                return _error_response(405, "metrics is GET-only")
            return await self._handle_metrics()
        if request.path == "/v1/status":
            if request.method != "GET":
                return _error_response(405, "status is GET-only")
            return await self._handle_op(request, "status", rate_limited=False)
        if request.path == "/v1/admin/pool":
            if request.method != "GET":
                return _error_response(405, "pool is GET-only")
            return await self._handle_op(request, "pool_status", rate_limited=False)
        if request.path == "/v1/admin/scale":
            if request.method != "POST":
                return _error_response(405, "scale is POST-only")
            return await self._handle_admin_scale(request)
        for op in _DATA_OPS:
            if request.path == f"/v1/{op}":
                if request.method != "POST":
                    return _error_response(405, f"{op} is POST-only")
                return await self._handle_op(request, op, rate_limited=True)
        return _error_response(404, f"no route for {request.path!r}")

    # ------------------------------------------------------------------
    # the data plane
    # ------------------------------------------------------------------

    async def _handle_op(
        self, request: HttpRequest, op: str, rate_limited: bool
    ) -> bytes:
        tenant = self.tokens.authenticate(request.headers.get("authorization"))
        if tenant is None:
            self.rejects_total.inc(tenant="unknown", reason="unauthorized")
            return json_response(
                401,
                {"ok": False, "op": op, "error": _edge_error("unauthorized")},
                extra_headers=(("WWW-Authenticate", 'Bearer realm="repro"'),),
            )
        self.requests_total.inc(tenant=tenant, endpoint=op)
        if rate_limited:
            retry_after = self.limiter.acquire(tenant)
            if retry_after > 0.0:
                self.rejects_total.inc(tenant=tenant, reason="rate_limited")
                busy = BusyError(
                    f"tenant {tenant!r} exceeded {self.limiter.rate:g} req/s",
                    retry_after=retry_after,
                )
                return json_response(
                    429,
                    {"ok": False, "op": op, "error": busy.payload()},
                    extra_headers=(("Retry-After", format_retry_after(retry_after)),),
                )
        try:
            message = validate_payload(op, request.json())
        except (ProtocolError, HttpError) as exc:
            self.rejects_total.inc(tenant=tenant, reason="malformed")
            # same MALFORMED payload the TCP front door would answer, so
            # response classification is transport-independent
            malformed = (
                exc if isinstance(exc, ProtocolError) else ProtocolError(exc.message)
            )
            return json_response(
                400, {"ok": False, "op": op, "error": error_payload(malformed)}
            )
        try:
            response = await self._backend_rpc(message)
        except (ConnectionError, OSError) as exc:
            self.rejects_total.inc(tenant=tenant, reason="backend_down")
            self.backend_up.set(0)
            return json_response(
                502,
                {"ok": False, "op": op, "error": _edge_error("backend_down", str(exc))},
            )
        self.backend_up.set(1)
        return self._render_backend(op, tenant, response)

    async def _handle_admin_scale(self, request: HttpRequest) -> bytes:
        """``POST /v1/admin/scale``: one pool mutation per request.

        The body names the mutation in ``action`` plus that op's own
        wire fields (``count`` / ``server``, optional ``aid``/``qr``);
        everything after the action dispatch is the standard wire-op
        path, so validation still derives from the registry and the
        backend's JSON verdict passes through verbatim.
        """
        tenant = self.tokens.authenticate(request.headers.get("authorization"))
        if tenant is None:
            self.rejects_total.inc(tenant="unknown", reason="unauthorized")
            return json_response(
                401,
                {"ok": False, "op": _SCALE_LABEL, "error": _edge_error("unauthorized")},
                extra_headers=(("WWW-Authenticate", 'Bearer realm="repro"'),),
            )
        try:
            body = dict(request.json())
        except HttpError as exc:
            self.rejects_total.inc(tenant=tenant, reason="malformed")
            return json_response(
                400,
                {
                    "ok": False,
                    "op": _SCALE_LABEL,
                    "error": error_payload(ProtocolError(exc.message)),
                },
            )
        action = body.pop("action", None)
        if action not in _SCALE_ACTIONS:
            self.rejects_total.inc(tenant=tenant, reason="malformed")
            malformed = ProtocolError(
                f"scale action must be one of {', '.join(_SCALE_ACTIONS)}, "
                f"got {action!r}"
            )
            return json_response(
                400, {"ok": False, "op": _SCALE_LABEL, "error": error_payload(malformed)}
            )
        self.requests_total.inc(tenant=tenant, endpoint=f"scale:{action}")
        try:
            message = validate_payload(action, body)
        except ProtocolError as exc:
            self.rejects_total.inc(tenant=tenant, reason="malformed")
            return json_response(
                400, {"ok": False, "op": action, "error": error_payload(exc)}
            )
        try:
            response = await self._backend_rpc(message)
        except (ConnectionError, OSError) as exc:
            self.rejects_total.inc(tenant=tenant, reason="backend_down")
            self.backend_up.set(0)
            return json_response(
                502,
                {
                    "ok": False,
                    "op": action,
                    "error": _edge_error("backend_down", str(exc)),
                },
            )
        self.backend_up.set(1)
        return self._render_backend(action, tenant, response)

    def _render_backend(self, op: str, tenant: str, response: dict[str, Any]) -> bytes:
        """Backend JSON out as HTTP, body verbatim."""
        if response.get("ok"):
            if response.get("replayed"):
                self.replayed_total.inc(tenant=tenant)
            return json_response(200, response)
        error = response.get("error") or {}
        status = _STATUS_FOR.get(error.get("code"), 500)
        headers: tuple[tuple[str, str], ...] = ()
        if status == 429:
            # the admission controller's own estimate: the body carries
            # it verbatim, the header is the same number through the one
            # formatter — never a second back-off source
            self.rejects_total.inc(tenant=tenant, reason="busy")
            retry_after = error.get("retry_after")
            if retry_after is not None:
                headers = (("Retry-After", format_retry_after(float(retry_after))),)
        return json_response(status, response, extra_headers=headers)

    async def _backend_rpc(self, message: dict[str, Any]) -> dict[str, Any]:
        """One exchange on the shared backend connection (FIFO via lock).

        A transport error drops the connection.  Most ops then retry
        once through a fresh one: ``reserve`` is rid-keyed exactly-once
        (the resend returns the recorded verdict instead of
        double-applying) and ``probe``/``status`` are read-only.
        ``cancel`` is the exception — the backend re-decides a resent
        cancel, so a first attempt that applied but lost its reply would
        come back ``NOT_FOUND``; rather than launder a cancel that
        actually succeeded into a 404, the gateway surfaces the
        transport error (502) and leaves the retry decision to the
        caller, who knows the outcome is ambiguous.  Pool mutations are
        retriable only when they carry an ``aid`` (the backend's
        admin-idempotency key); without one a resent ``add_servers``
        would grow the pool twice.
        """
        op = message.get("op")
        retriable = op != "cancel" and not (
            op in _SCALE_ACTIONS and message.get("aid") is None
        )
        for attempt in (0, 1):
            async with self._backend_lock:
                try:
                    if self._backend is None:
                        self._backend = await asyncio.open_connection(
                            self.config.backend_host,
                            self.config.backend_port,
                            limit=MAX_LINE_BYTES,
                        )
                    reader, writer = self._backend
                    writer.write(encode(message))
                    await writer.drain()
                    raw = await reader.readline()
                    if not raw:
                        raise ConnectionError("backend closed the connection")
                    return json.loads(raw.decode("utf-8"))
                except asyncio.CancelledError:
                    # a timed-out caller (the /metrics status probe) may
                    # abandon the exchange between write and readline;
                    # the unread reply would stay buffered and answer
                    # the *next* rpc on this connection, so drop it
                    self._drop_backend()
                    raise
                except (ConnectionError, OSError, ValueError):
                    self._drop_backend()
                    if attempt or not retriable:
                        raise
        raise AssertionError("unreachable")

    def _drop_backend(self) -> None:
        """Invalidate and close the pooled backend connection."""
        if self._backend is not None:
            _, writer = self._backend
            self._backend = None
            writer.close()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    async def _handle_metrics(self) -> bytes:
        """Render the registry, refreshing service-level gauges first."""
        try:
            status = await asyncio.wait_for(
                self._backend_rpc({"op": "status"}), timeout=self.config.status_timeout
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            self.backend_up.set(0)
        else:
            self.backend_up.set(1)
            metrics = status.get("metrics", {})
            gauges = self.service_gauges
            gauges["accepted_total"].set(metrics.get("accepted", 0))
            gauges["rejected_total"].set(metrics.get("rejected_total", 0))
            gauges["shed_total"].set(metrics.get("shed", 0))
            gauges["replayed_total"].set(metrics.get("replayed", 0))
            gauges["decided"].set(status.get("decided", 0))
            pool = status.get("pool", {})
            for state in ("active", "draining", "removed", "total"):
                gauges["pool_servers"].set(pool.get(state, 0), state=state)
            admission = status.get("admission", {})
            gauges["queue_delay_ewma_ms"].set(admission.get("queue_delay_ewma_ms", 0.0))
            gauges["shed_rate"].set(admission.get("shed_rate", 0.0))
            latency = metrics.get("service_latency", {})
            for quantile in ("50", "95", "99"):
                gauges["service_latency_ms"].set(
                    latency.get(f"p{quantile}_ms", 0.0), quantile=f"0.{quantile}"
                )
        return response_bytes(
            200,
            self.registry.render().encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )


def _edge_error(reason: str, detail: str = "") -> dict[str, Any]:
    """An error payload minted at the gateway (not proxied from the backend)."""
    messages = {
        "unauthorized": "missing or unknown bearer token",
        "backend_down": f"backend unavailable: {detail}" if detail else "backend unavailable",
    }
    codes = {"unauthorized": 401, "backend_down": 502}
    return {
        "code": reason.upper(),
        "http_status": codes[reason],
        "message": messages[reason],
    }


def _error_response(status: int, message: str, keep_alive: bool = True) -> bytes:
    return json_response(
        status,
        {"ok": False, "error": {"code": "HTTP", "http_status": status, "message": message}},
        keep_alive=keep_alive,
    )


async def serve_gateway(config: GatewayConfig, ready_line: bool = True) -> None:
    """Boot a gateway and serve until cancelled."""
    gateway = Gateway(config)
    await gateway.start()
    if ready_line:
        mode = "open (no tokens)" if gateway.tokens.open_mode else "bearer-token"
        print(
            f"repro gateway: listening on {config.host}:{gateway.port} -> "
            f"backend {config.backend_host}:{config.backend_port} "
            f"(auth: {mode}, rate: {config.rate:g}/s burst {config.burst:g})",
            flush=True,
        )
    try:
        await asyncio.Event().wait()
    except asyncio.CancelledError:
        await gateway.stop()
        raise
