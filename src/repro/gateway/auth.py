"""Bearer-token tenancy and per-tenant token-bucket rate limits.

The gateway's edge policy, grounded in the per-tenant admission
arguments of "Heavy Traffic Optimal Resource Allocation Algorithms for
Cloud Computing Clusters" (PAPERS.md): identity comes from a static
bearer-token table (``token`` → ``tenant``), and each tenant draws from
an independent token bucket, so one tenant's burst cannot starve
another's steady stream *before* the shared admission controller ever
sees it.  A limited request is answered ``429`` with the bucket's own
``retry_after`` — the time until one token is available — rendered
through the same :func:`~repro.gateway.http.format_retry_after` helper
as proxied admission ``BUSY`` responses.

With no tokens configured the gateway runs **open**: every request is
tenant ``anonymous`` (still rate-limited as one tenant).  That is the
right default for the benchmarks and the wrong one for production;
``docs/gateway.md`` says so loudly.
"""

from __future__ import annotations

import time
from pathlib import Path

__all__ = ["ANONYMOUS", "TenantLimiter", "TokenBucket", "TokenTable"]

#: the tenant of record when no token table is configured (open mode)
ANONYMOUS = "anonymous"


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock=time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"refill rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst capacity must be at least 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def acquire(self) -> float:
        """Take one token: ``0.0`` on success, else seconds until one refills."""
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return round((1.0 - self._tokens) / self.rate, 4)


class TenantLimiter:
    """One lazily-created bucket per tenant, all with the same policy."""

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    def acquire(self, tenant: str) -> float:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.rate, self.burst, clock=self._clock
            )
        return bucket.acquire()


class TokenTable:
    """Static bearer-token table: ``token`` → ``tenant``."""

    def __init__(self, tokens: dict[str, str] | None = None) -> None:
        self._tokens = dict(tokens or {})

    @classmethod
    def from_file(cls, path: str | Path) -> "TokenTable":
        """One ``token:tenant`` pair per line; ``#`` comments and blanks skipped."""
        tokens: dict[str, str] = {}
        for lineno, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            token, sep, tenant = line.partition(":")
            if not sep or not token or not tenant:
                raise ValueError(f"{path}:{lineno}: expected 'token:tenant', got {line!r}")
            tokens[token.strip()] = tenant.strip()
        return cls(tokens)

    @property
    def open_mode(self) -> bool:
        """No tokens configured: every caller is :data:`ANONYMOUS`."""
        return not self._tokens

    def authenticate(self, authorization: str | None) -> str | None:
        """The tenant for an ``Authorization`` header value, or ``None``.

        Open mode admits everyone as :data:`ANONYMOUS` (header ignored);
        otherwise only ``Bearer <known-token>`` authenticates.
        """
        if self.open_mode:
            return ANONYMOUS
        if not authorization:
            return None
        scheme, _, token = authorization.partition(" ")
        if scheme.lower() != "bearer" or not token.strip():
            return None
        return self._tokens.get(token.strip())
