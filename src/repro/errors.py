"""Typed error vocabulary shared by the facade, the CLI and the service.

One enum, three consumers:

* the **CLI** uses :class:`ErrorCode` values as process exit codes, so
  "rejected after ``R_max`` retries" (:data:`ErrorCode.REJECTED`, 3) is
  distinguishable from "malformed request" (:data:`ErrorCode.MALFORMED`,
  2) in shell scripts — previously both surfaced as a generic failure;
* the **service** (`repro serve`) puts the same codes on the wire: every
  error response carries ``{"code": "<NAME>", "exit_code": <int>}`` so a
  client can ``sys.exit(error["exit_code"])`` and behave exactly like
  the local CLI would;
* the **facade** raises the exception types below instead of bare
  ``ValueError``/``KeyError``.  Each typed exception subclasses the
  exception its untyped predecessor raised (``MalformedRequestError`` is
  a ``ValueError``, ``NotFoundError`` a ``KeyError``, …), so existing
  callers keep working while new callers can branch on ``exc.code``.

Exit code 1 stays reserved for unexpected internal failures (tracebacks,
lint findings, benchmark regressions), matching the rest of the CLI.
"""

from __future__ import annotations

import enum
from typing import Any

__all__ = [
    "ErrorCode",
    "ReproError",
    "MalformedRequestError",
    "RejectedError",
    "ConflictError",
    "NotFoundError",
    "BusyError",
    "ShuttingDownError",
    "error_payload",
]


class ErrorCode(enum.IntEnum):
    """Stable error/exit codes, shared between CLI and wire protocol."""

    #: success
    OK = 0
    #: unexpected internal failure (also the generic CLI failure code)
    INTERNAL = 1
    #: the request itself is invalid (bad fields, bad JSON, bad usage)
    MALFORMED = 2
    #: a well-formed request was rejected after the R_max retry policy
    REJECTED = 3
    #: a commit raced a conflicting commit (range-searched period is gone)
    CONFLICT = 4
    #: the referenced reservation does not exist (cancel/release)
    NOT_FOUND = 5
    #: load-shed by admission control; retry after the advertised delay
    BUSY = 6
    #: the server is draining and accepts no new work
    SHUTTING_DOWN = 7

    @property
    def wire(self) -> str:
        """The symbolic name used on the wire (``"REJECTED"``, …)."""
        return self.name


class ReproError(Exception):
    """Base class for typed errors; carries an :class:`ErrorCode`."""

    code: ErrorCode = ErrorCode.INTERNAL

    def payload(self) -> dict[str, Any]:
        """Wire-serializable description (merged into error responses)."""
        return {
            "code": self.code.wire,
            "exit_code": int(self.code),
            "message": str(self),
        }


class MalformedRequestError(ReproError, ValueError):
    """The request is structurally invalid and can never succeed."""

    code = ErrorCode.MALFORMED


class RejectedError(ReproError):
    """The scheduler exhausted its retry policy without an allocation."""

    code = ErrorCode.REJECTED

    def __init__(self, message: str, reason: str | None = None, attempts: int = 0) -> None:
        super().__init__(message)
        #: ``"exhausted"``, ``"deadline"`` or ``"horizon"`` (see
        #: :class:`~repro.core.coalloc.ScheduleOutcome`)
        self.reason = reason
        self.attempts = attempts

    def payload(self) -> dict[str, Any]:
        out = super().payload()
        out["reason"] = self.reason
        out["attempts"] = self.attempts
        return out


class ConflictError(ReproError, ValueError):
    """A two-phase commit lost the race for its range-searched periods."""

    code = ErrorCode.CONFLICT


class NotFoundError(ReproError, KeyError):
    """No active reservation with the given id."""

    code = ErrorCode.NOT_FOUND

    def __str__(self) -> str:
        # KeyError.__str__ repr-quotes its argument; keep the plain message
        return str(self.args[0]) if self.args else ""


class BusyError(ReproError):
    """Admission control shed the request; retry after ``retry_after``."""

    code = ErrorCode.BUSY

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        #: suggested client back-off, seconds (wall clock)
        self.retry_after = retry_after

    def payload(self) -> dict[str, Any]:
        out = super().payload()
        out["retry_after"] = self.retry_after
        return out


class ShuttingDownError(ReproError):
    """The server is draining; reconnect once it is restarted."""

    code = ErrorCode.SHUTTING_DOWN


def error_payload(exc: BaseException) -> dict[str, Any]:
    """Wire payload for any exception, typed or not.

    Typed errors report their own code; anything else is ``INTERNAL``
    (the message is included — the service never hides failures).
    """
    if isinstance(exc, ReproError):
        return exc.payload()
    return {
        "code": ErrorCode.INTERNAL.wire,
        "exit_code": int(ErrorCode.INTERNAL),
        "message": f"{type(exc).__name__}: {exc}",
    }
