"""One-stop public facade over the co-allocation machinery.

:class:`CoAllocationScheduler` bundles an
:class:`~repro.core.calendar.AvailabilityCalendar` and an
:class:`~repro.core.coalloc.OnlineCoAllocator` behind the interface a
resource manager (the VCL front-end of Section 3.1, a PCE of Section 3.2,
or a MapReduce master) would use:

* :meth:`schedule` — submit a request, get an allocation or ``None``;
* :meth:`range_search` / :meth:`commit` — inspect then commit;
* :meth:`suggest_alternatives` — "otherwise, it suggests alternative times
  at which the resources are available" (Section 3.1);
* :meth:`cancel` / :meth:`release_early` — give resources back;
* :meth:`advance` — move the clock (rolls the slot-tree horizon).
"""

from __future__ import annotations

from .core.calendar import AvailabilityCalendar
from .core.coalloc import OnlineCoAllocator, ScheduleOutcome
from .core.opcount import OpCounter
from .core.types import Allocation, IdlePeriod, RangeQuery, Request, Reservation
from .errors import ConflictError, MalformedRequestError, NotFoundError, RejectedError

__all__ = ["CoAllocationScheduler", "allocation_to_dict", "allocation_from_dict"]

#: facade/scheduler state-dict schema version (see :meth:`export_state`)
STATE_VERSION = 1


def allocation_to_dict(allocation: Allocation) -> dict:
    """JSON-serializable form of an :class:`Allocation` (snapshot support)."""
    return {
        "rid": allocation.rid,
        "start": allocation.start,
        "end": allocation.end,
        "attempts": allocation.attempts,
        "delay": allocation.delay,
        "reservations": [[r.server, r.start, r.end] for r in allocation.reservations],
    }


def allocation_from_dict(data: dict) -> Allocation:
    """Inverse of :func:`allocation_to_dict`."""
    rid = int(data["rid"])
    return Allocation(
        rid=rid,
        start=float(data["start"]),
        end=float(data["end"]),
        reservations=tuple(
            Reservation(rid=rid, server=int(s), start=float(st), end=float(et))
            for s, st, et in data["reservations"]
        ),
        attempts=int(data["attempts"]),
        delay=float(data["delay"]),
    )


class CoAllocationScheduler:
    """High-level scheduler for a system of ``n_servers``.

    Parameters
    ----------
    n_servers:
        Number of servers ``N``.
    tau:
        Slot length ``τ`` (time units; the simulator uses seconds).
    q_slots:
        Slots in the horizon; ``H = q_slots * tau``.
    delta_t:
        Retry increment ``Δt``; defaults to ``tau``, the paper's setting
        (15 minutes with τ = 15 min).
    r_max:
        Maximum scheduling attempts; defaults to ``Q // 2`` as in the
        paper's evaluation.
    start_time:
        Initial clock value.
    """

    def __init__(
        self,
        n_servers: int,
        tau: float,
        q_slots: int,
        delta_t: float | None = None,
        r_max: int | None = None,
        start_time: float = 0.0,
    ) -> None:
        self.counter = OpCounter()
        self.calendar = AvailabilityCalendar(
            n_servers=n_servers,
            tau=tau,
            q_slots=q_slots,
            start_time=start_time,
            counter=self.counter,
        )
        self.allocator = OnlineCoAllocator(
            calendar=self.calendar,
            delta_t=delta_t if delta_t is not None else tau,
            r_max=r_max if r_max is not None else max(1, q_slots // 2),
            counter=self.counter,
        )
        self._allocations: dict[int, Allocation] = {}

    # -- clock ----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.calendar.now

    def advance(self, to_time: float) -> None:
        """Advance the clock, rolling the availability horizon."""
        self.calendar.advance(to_time)

    # -- scheduling -----------------------------------------------------

    def schedule(self, request: Request) -> Allocation | None:
        """Schedule a request; remembers the allocation for later cancel."""
        return self.schedule_detailed(request).allocation

    def schedule_detailed(self, request: Request) -> ScheduleOutcome:
        """Schedule a request, always reporting attempts and failure reason."""
        outcome = self.allocator.schedule_detailed(request)
        if outcome.allocation is not None:
            self._allocations[outcome.allocation.rid] = outcome.allocation
        return outcome

    def schedule_or_raise(self, request: Request) -> Allocation:
        """Schedule a request; raise a typed error instead of returning ``None``.

        Raises :class:`~repro.errors.RejectedError` carrying the retry
        policy's verdict (``reason``/``attempts``), so callers — the CLI
        and the service — can distinguish "rejected after ``R_max``
        retries" from a malformed request (which raises
        :class:`~repro.errors.MalformedRequestError` at
        :class:`~repro.core.types.Request` construction time).
        """
        outcome = self.schedule_detailed(request)
        if outcome.allocation is None:
            raise RejectedError(
                f"request {request.rid} rejected after {outcome.attempts} attempt(s) "
                f"({outcome.reason})",
                reason=outcome.reason,
                attempts=outcome.attempts,
            )
        return outcome.allocation

    def range_search(self, ta: float, tb: float) -> list[IdlePeriod]:
        """All idle periods covering ``[ta, tb)``; commits nothing."""
        return self.allocator.range_search(RangeQuery(ta=ta, tb=tb))

    def commit(
        self, periods: list[IdlePeriod], start: float, end: float, rid: int = 0
    ) -> Allocation:
        """Commit periods previously returned by :meth:`range_search`.

        Raises :class:`~repro.errors.ConflictError` (a ``ValueError``)
        when a period can no longer host the window — someone else
        committed it between the range search and this commit.
        """
        try:
            allocation = self.allocator.commit(periods, start, end, rid=rid)
        except ValueError as exc:
            raise ConflictError(str(exc)) from exc
        self._allocations[rid] = allocation
        return allocation

    def suggest_alternatives(
        self, request: Request, max_suggestions: int = 3
    ) -> list[float]:
        """Start times at which the request *would* fit, without committing.

        Probes ``s_r, s_r + Δt, s_r + 2Δt, …`` like the scheduling loop
        but read-only; used by front-ends to answer "when could I get
        this?" after a refusal.
        """
        suggestions: list[float] = []
        base = max(request.sr, self.calendar.now)
        for k in range(self.allocator.r_max):
            start = base + k * self.allocator.delta_t
            if not self.calendar.in_horizon(start):
                break
            if self.calendar.find_feasible(start, start + request.lr, request.nr) is not None:
                suggestions.append(start)
                if len(suggestions) >= max_suggestions:
                    break
        return suggestions

    # -- giving resources back -----------------------------------------

    def cancel(self, rid: int) -> None:
        """Cancel a previously granted allocation, freeing all its servers.

        Raises :class:`~repro.errors.NotFoundError` (a ``KeyError``) when
        no active allocation carries ``rid``.
        """
        allocation = self._allocations.pop(rid, None)
        if allocation is None:
            raise NotFoundError(f"no active allocation with rid={rid}")
        for res in allocation.reservations:
            lo = max(res.start, self.calendar.now)
            if lo < res.end:
                self.calendar.release(res.server, lo, res.end)

    def release_early(self, rid: int, at_time: float) -> None:
        """Reclaim the tail of a running allocation that finished early.

        Frees ``[at_time, end)`` on every server of the allocation — the
        early-completion reclamation extension (jobs usually run shorter
        than their estimate in real traces).
        """
        allocation = self._allocations.pop(rid, None)
        if allocation is None:
            raise NotFoundError(f"no active allocation with rid={rid}")
        if not allocation.start <= at_time < allocation.end:
            raise ValueError(
                f"early release at {at_time} outside allocation window "
                f"[{allocation.start}, {allocation.end})"
            )
        for res in allocation.reservations:
            self.calendar.release(res.server, at_time, res.end)

    # -- elastic pool ----------------------------------------------------

    def add_servers(self, count: int, uids: list[int] | None = None) -> list[int]:
        """Grow the pool by ``count`` servers; returns the new server ids.

        Raises :class:`~repro.errors.MalformedRequestError` for a
        non-positive count.  ``uids``, when given, names the new trailing
        idle periods' uids (the sharded coordinator assigns them
        centrally for uid-order parity with a single calendar).
        """
        if count <= 0:
            raise MalformedRequestError(f"must add at least one server, got {count}")
        return self.calendar.add_servers(count, uids=uids)

    def drain(self, server: int) -> dict:
        """Stop ``server`` from admitting new reservations (idempotent).

        Existing reservations are honored until their end; the server can
        be :meth:`remove`\\ d once its last commitment has passed.  Raises
        :class:`~repro.errors.MalformedRequestError` for an unknown
        server and :class:`~repro.errors.ConflictError` for a removed
        one.
        """
        self._check_pool_server(server)
        try:
            changed = self.calendar.drain(server)
        except ValueError as exc:
            raise ConflictError(str(exc)) from exc
        return {
            "server": server,
            "status": "draining",
            "changed": changed,
            "drained": self.calendar.is_drained(server),
        }

    def remove(self, server: int) -> dict:
        """Retire a drained server (idempotent once removed).

        Raises :class:`~repro.errors.MalformedRequestError` for an
        unknown server and :class:`~repro.errors.ConflictError` when the
        server is still active or not yet drained.
        """
        self._check_pool_server(server)
        try:
            changed = self.calendar.remove(server)
        except ValueError as exc:
            raise ConflictError(str(exc)) from exc
        return {"server": server, "status": "removed", "changed": changed}

    def pool_status(self) -> dict:
        """Pool membership by state plus per-server drain progress."""
        return self.calendar.pool_status()

    def _check_pool_server(self, server: int) -> None:
        if not 0 <= server < self.calendar.n_servers:
            raise MalformedRequestError(
                f"server {server} out of range (pool has ever held "
                f"{self.calendar.n_servers} servers)"
            )

    # -- serializable state (snapshot/restore) ---------------------------

    def export_state(self) -> dict:
        """Full scheduler state as JSON-serializable data.

        Bundles the calendar's authoritative state (see
        :meth:`AvailabilityCalendar.export_state`) with the retry-policy
        parameters and the active allocations, so a restored scheduler
        can keep serving ``cancel``/``release_early`` for reservations
        granted before the snapshot.
        """
        return {
            "version": STATE_VERSION,
            "calendar": self.calendar.export_state(),
            "delta_t": self.allocator.delta_t,
            "r_max": self.allocator.r_max,
            "allocations": [
                allocation_to_dict(self._allocations[rid])
                for rid in sorted(self._allocations)
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> CoAllocationScheduler:
        """Rebuild a scheduler from :meth:`export_state` output."""
        version = state.get("version")
        if version != STATE_VERSION:
            raise ValueError(
                f"unsupported scheduler state version {version!r} "
                f"(this build reads version {STATE_VERSION})"
            )
        calendar_state = state["calendar"]
        scheduler = cls(
            n_servers=int(calendar_state["n_servers"]),
            tau=float(calendar_state["tau"]),
            q_slots=int(calendar_state["q_slots"]),
            delta_t=float(state["delta_t"]),
            r_max=int(state["r_max"]),
            start_time=float(calendar_state["now"]),
        )
        scheduler.calendar = AvailabilityCalendar.from_state(
            calendar_state, counter=scheduler.counter
        )
        scheduler.allocator.calendar = scheduler.calendar
        scheduler._allocations = {
            int(a["rid"]): allocation_from_dict(a) for a in state["allocations"]
        }
        return scheduler

    # -- introspection ---------------------------------------------------

    @property
    def n_servers(self) -> int:
        return self.calendar.n_servers

    def utilization(self, ta: float, tb: float) -> float:
        """Fraction of server-time committed within ``[ta, tb)``.

        Computed from the calendar's idle periods, so it reflects every
        commitment including advance reservations.
        """
        if not ta < tb:
            raise ValueError(f"window [{ta}, {tb}) is empty")
        window = tb - ta
        idle = 0.0
        for server in range(self.calendar.n_servers):
            for p in self.calendar.idle_periods(server):
                lo, hi = max(p.st, ta), min(p.et, tb)
                if lo < hi:
                    idle += hi - lo
        total = window * self.calendar.n_servers
        return 1.0 - idle / total
