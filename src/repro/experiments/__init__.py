"""Experiment harness: one module per table/figure of the paper.

Each module exposes a structured data function (used by tests and
benchmarks) and ``run(config) -> str`` rendering the paper artifact as a
text table.  ``run_all`` regenerates everything; ``python -m
repro.experiments`` prints the full set.
"""

from . import deadlines, fig3, fig4, fig5, fig6, fig7, loadsweep, table1, table2
from . import parallel, store
from .config import DEFAULT_CONFIG, SCALES, ExperimentConfig
from .runner import clear_cache, get_result, make_scheduler
from .store import ResultStore, RunSpec, configure_default_store, default_store

__all__ = [
    "DEFAULT_CONFIG",
    "SCALES",
    "ExperimentConfig",
    "ResultStore",
    "RunSpec",
    "clear_cache",
    "configure_default_store",
    "deadlines",
    "default_store",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "get_result",
    "loadsweep",
    "make_scheduler",
    "parallel",
    "run_all",
    "store",
    "table1",
    "table2",
]

_MODULES = [
    ("Table 1", table1),
    ("Figure 3", fig3),
    ("Figure 4", fig4),
    ("Figure 5", fig5),
    ("Table 2", table2),
    ("Figure 6", fig6),
    ("Figure 7", fig7),
    ("Extension: deadlines", deadlines),
    ("Extension: load sweep", loadsweep),
]


def run_all(config: ExperimentConfig = DEFAULT_CONFIG) -> str:
    """Regenerate every table and figure; returns the combined report."""
    parts = []
    for name, module in _MODULES:
        parts.append(f"{'=' * 72}\n{name}\n{'=' * 72}\n{module.run(config)}")
    return "\n\n".join(parts)
