"""Experiment configuration shared by every table/figure module.

The paper's runs replay the full traces (up to 202k jobs).  A pure-Python
replay of that size is possible but slow, so experiments run at a
configurable *scale*:

* ``smoke``   — 600 jobs; seconds per run, used by the test suite;
* ``default`` — 4,000 jobs; the benchmark harness setting, minutes total;
* ``full``    — the original Table 1 job counts (expect ~1 hour wall
  clock across all experiments).

Everything else follows Section 5: slot length ``τ = 15 min`` (the
minimum temporal request size), retry increment ``Δt = 15 min``, horizon
of three days (``Q = 288`` slots), and ``R_max = Q/2``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExperimentConfig", "SCALES", "DEFAULT_CONFIG"]


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Knobs of the evaluation setup (paper defaults baked in)."""

    n_jobs: int | None = 4000  # None = full trace size per workload
    seed: int = 42
    tau: float = 900.0  # 15 minutes
    delta_t: float = 900.0  # paper: Δt = 15 minutes
    q_slots: int = 288  # 3-day horizon
    batch_scheduler: str = "easy"  # the production comparator

    @property
    def r_max(self) -> int:
        """The paper sets R_max = Q / 2."""
        return self.q_slots // 2


SCALES: dict[str, ExperimentConfig] = {
    "smoke": ExperimentConfig(n_jobs=600),
    "default": ExperimentConfig(n_jobs=4000),
    "full": ExperimentConfig(n_jobs=None),
}

DEFAULT_CONFIG = SCALES["default"]
