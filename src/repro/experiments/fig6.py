"""Figure 6 — waiting-time distribution under advance reservations.

The workload transformation follows Section 5.2: a fraction ``ρ`` of
jobs requests a start time zero to three hours ahead.  Observations to
reproduce:

* a peak appears around 3 hours (jobs parked at their future ``s_r``
  would show as waits in a submit-relative metric; measured against
  ``s_r`` the shift shows as redistribution of mass in the [0,3] band);
* increasing ``ρ`` changes the distribution within [0,3] hours while the
  tails stay put;
* the batch comparator keeps its long tail.
"""

from __future__ import annotations

import numpy as np

from ..metrics.report import format_series
from ..metrics.stats import waiting_time_histogram
from .config import DEFAULT_CONFIG, ExperimentConfig
from .runner import get_result
from .store import RunSpec

__all__ = ["RHOS", "required_runs", "run", "series"]

RHOS = (0.0, 0.2, 0.4, 0.6, 0.8)

WORKLOADS = ("CTC", "KTH")


def required_runs(config: ExperimentConfig = DEFAULT_CONFIG) -> list[RunSpec]:
    """The simulations this figure consumes (for the parallel harness)."""
    specs = [
        RunSpec.normalized(workload, "online", config, rho=rho)
        for workload in WORKLOADS
        for rho in RHOS
    ]
    specs.extend(RunSpec.normalized(workload, "batch", config) for workload in WORKLOADS)
    return specs


def series(
    workload: str, config: ExperimentConfig = DEFAULT_CONFIG, max_hours: float = 14.0
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Waiting-time frequency curves for each ρ plus the batch comparator.

    Waits are measured from *submission* (``start - q_r``) in this figure
    so the reservation lead time is visible, matching the paper's peak at
    ~3 hours.
    """
    curves: dict[str, np.ndarray] = {}
    lefts = np.array([])
    for rho in RHOS:
        result = get_result(workload, "online", config, rho=rho)
        # measure from q_r: shift each record's s_r back to its q_r
        shifted = [r for r in result.records if not r.rejected]
        waits = np.array([r.start - r.qr for r in shifted]) / 3600.0
        edges = np.arange(0.0, max_hours + 1.0, 1.0)
        counts, _ = np.histogram(np.minimum(waits, max_hours - 0.5), bins=edges)
        lefts = edges[:-1]
        curves[f"{workload}-rho={rho:g}"] = counts / max(len(shifted), 1)
    batch = get_result(workload, "batch", config)
    lefts, freq = waiting_time_histogram(batch.records, bin_hours=1.0, max_hours=max_hours)
    curves[f"{workload}-batch"] = freq
    return lefts, curves


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> str:
    parts = []
    for label, workload in (("(a)", "CTC"), ("(b)", "KTH")):
        lefts, curves = series(workload, config)
        parts.append(
            format_series(
                lefts,
                curves,
                "wait (h)",
                title=f"Figure 6{label}: waiting-time distribution vs rho, {workload}",
            )
        )
    return "\n\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print(run())
