"""Figure 5 — average waiting time vs job spatial size, CTC and KTH.

Paper's observations to reproduce: waiting time grows with spatial size
under both schedulers, and the online algorithm stays below the batch
scheduler across the size range (its horizon-wide look-ahead packs wide
jobs into the schedule instead of queueing them).
"""

from __future__ import annotations

import numpy as np

from ..metrics.report import format_series
from ..metrics.stats import avg_waiting_by_spatial
from .config import DEFAULT_CONFIG, ExperimentConfig
from .runner import get_result
from .store import RunSpec

__all__ = ["required_runs", "run", "series"]

WORKLOADS = ("CTC", "KTH")


def required_runs(config: ExperimentConfig = DEFAULT_CONFIG) -> list[RunSpec]:
    """The simulations this figure consumes (for the parallel harness)."""
    return [
        RunSpec.normalized(workload, sched, config)
        for workload in WORKLOADS
        for sched in ("online", "batch")
    ]


def series(
    workload: str, config: ExperimentConfig = DEFAULT_CONFIG, bin_width: int = 25
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Average wait (seconds, as the paper's y-axis) per spatial-size bin."""
    curves: dict[str, np.ndarray] = {}
    lefts_all: list[np.ndarray] = []
    for sched in ("online", "batch"):
        result = get_result(workload, sched, config)
        lefts, means = avg_waiting_by_spatial(result.records, bin_width=bin_width)
        curves[f"{workload}-{sched}"] = means
        lefts_all.append(lefts)
    # pad to a common axis
    width = max(len(x) for x in lefts_all)
    lefts = np.arange(width) * bin_width
    for key, values in curves.items():
        if len(values) < width:
            curves[key] = np.concatenate([values, np.full(width - len(values), np.nan)])
    return lefts, curves


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> str:
    parts = []
    for label, workload in (("(a)", "CTC"), ("(b)", "KTH")):
        lefts, curves = series(workload, config)
        parts.append(
            format_series(
                lefts,
                curves,
                "n_r",
                title=f"Figure 5{label}: average waiting time (s) vs spatial size, {workload}",
                precision=0,
            )
        )
    return "\n\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print(run())
