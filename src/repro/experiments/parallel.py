"""Parallel experiment execution: enumerate, dedupe, fan out, render.

A full-scale sequential pass over every table and figure takes on the
order of an hour, yet each underlying ``(workload, scheduler, ρ)``
simulation is independent of every other — the classic
embarrassingly-parallel sweep.  This module:

1. asks each artifact module which runs it needs (``required_runs``),
2. deduplicates shared runs by content address (Figures 3/4/5 and
   Table 2 all reuse the CTC/KTH online and batch simulations),
3. executes the missing ones on a ``ProcessPoolExecutor`` with per-run
   failure isolation — one crashed simulation is reported and the rest
   of the sweep continues — and per-run progress lines,
4. renders the artifacts from the warmed store, exactly as the
   sequential path would.

Workers return the *serialized* payload (the store's disk format), so
every parallel result passes through the same versioned round-trip the
disk tier uses; record checksums are carried in the report to prove the
worker path reproduces in-process simulation bit for bit.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable

from . import fig3, fig4, fig5, fig6, fig7, table1, table2
from .config import DEFAULT_CONFIG, ExperimentConfig
from .store import ResultStore, RunSpec, compute_result, default_store

__all__ = [
    "ARTIFACTS",
    "RunReport",
    "WarmReport",
    "enumerate_runs",
    "render_artifacts",
    "warm_store",
]

#: artifact name -> module, in the paper's presentation order
ARTIFACTS = {
    "table1": table1,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "table2": table2,
    "fig6": fig6,
    "fig7": fig7,
}

Progress = Callable[[str], None]


@dataclass(slots=True)
class RunReport:
    """Outcome of one deduplicated run in a warm-up sweep."""

    label: str
    key: str
    status: str  # "cached" | "computed" | "failed"
    elapsed_sec: float = 0.0
    checksum: str | None = None
    error: str | None = None


@dataclass(slots=True)
class WarmReport:
    """Everything a warm-up sweep did, for benchmarks and CI assertions."""

    runs: list[RunReport] = field(default_factory=list)
    elapsed_sec: float = 0.0

    @property
    def cached(self) -> int:
        return sum(1 for r in self.runs if r.status == "cached")

    @property
    def computed(self) -> int:
        return sum(1 for r in self.runs if r.status == "computed")

    @property
    def failures(self) -> list[RunReport]:
        return [r for r in self.runs if r.status == "failed"]

    @property
    def checksums(self) -> dict[str, str]:
        """label -> record checksum for every run that produced a result."""
        return {r.label: r.checksum for r in self.runs if r.checksum is not None}

    def to_json(self) -> dict[str, Any]:
        return {
            "elapsed_sec": round(self.elapsed_sec, 4),
            "cached": self.cached,
            "computed": self.computed,
            "failed": len(self.failures),
            "runs": [
                {
                    "label": r.label,
                    "key": r.key,
                    "status": r.status,
                    "elapsed_sec": round(r.elapsed_sec, 4),
                    "checksum": r.checksum,
                    "error": r.error,
                }
                for r in self.runs
            ],
        }


def enumerate_runs(
    artifacts: list[str] | tuple[str, ...],
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> list[RunSpec]:
    """Distinct simulations the named artifacts need, in first-use order.

    Deduplication is by content address, so the CTC/KTH online and batch
    runs shared by Figures 3/4/5 and Table 2 appear exactly once.
    """
    seen: dict[str, RunSpec] = {}
    for name in artifacts:
        try:
            module = ARTIFACTS[name]
        except KeyError:
            raise ValueError(
                f"unknown artifact {name!r}; choose from {', '.join(ARTIFACTS)}"
            ) from None
        for spec in module.required_runs(config):
            seen.setdefault(spec.key, spec)
    return list(seen.values())


def _worker(spec: RunSpec) -> tuple[dict[str, Any], float]:
    """Executed in a worker process: simulate and serialize one run."""
    start = perf_counter()
    result = compute_result(spec)
    return result.to_payload(), perf_counter() - start


def warm_store(
    specs: list[RunSpec],
    workers: int = 1,
    store: ResultStore | None = None,
    progress: Progress | None = None,
) -> WarmReport:
    """Ensure every spec has a result in ``store``; fan out the misses.

    ``workers <= 1`` computes inline (no process pool); failures are
    isolated per run either way — a crashed simulation yields a
    ``failed`` entry in the report, not an aborted sweep.
    """
    if store is None:
        store = default_store()
    say = progress or (lambda _line: None)
    report = WarmReport()
    sweep_start = perf_counter()

    todo: list[RunSpec] = []
    for spec in specs:
        cached = store.get(spec)
        if cached is not None:
            report.runs.append(
                RunReport(spec.label, spec.key, "cached", checksum=cached.record_checksum())
            )
            say(f"[cache] {spec.label}")
        else:
            todo.append(spec)

    done_count = len(report.runs)
    total = len(specs)

    def note(spec: RunSpec, entry: RunReport) -> None:
        nonlocal done_count
        done_count += 1
        report.runs.append(entry)
        if entry.status == "failed":
            say(f"[{done_count}/{total}] {spec.label} FAILED: {entry.error}")
        else:
            say(f"[{done_count}/{total}] {spec.label} done in {entry.elapsed_sec:.1f}s")

    if workers <= 1 or len(todo) <= 1:
        for spec in todo:
            start = perf_counter()
            try:
                result = store.get_or_compute(spec)
            except Exception as exc:  # isolate: report, keep sweeping
                note(spec, RunReport(spec.label, spec.key, "failed",
                                     perf_counter() - start, error=repr(exc)))
                continue
            note(spec, RunReport(spec.label, spec.key, "computed",
                                 perf_counter() - start,
                                 checksum=result.record_checksum()))
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: dict[Future, RunSpec] = {pool.submit(_worker, s): s for s in todo}
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    spec = futures[future]
                    try:
                        payload, elapsed = future.result()
                        result = store.put_payload(spec, payload)
                    except Exception as exc:  # worker crash or bad payload
                        note(spec, RunReport(spec.label, spec.key, "failed",
                                             error=repr(exc)))
                        continue
                    note(spec, RunReport(spec.label, spec.key, "computed", elapsed,
                                         checksum=result.record_checksum()))

    report.elapsed_sec = perf_counter() - sweep_start
    return report


def render_artifacts(
    artifacts: list[str] | tuple[str, ...],
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> str:
    """Render the named artifacts (from a warmed store, ideally)."""
    parts = [ARTIFACTS[name].run(config) for name in artifacts]
    return "\n\n".join(parts)
