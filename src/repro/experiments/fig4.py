"""Figure 4 — (a) waiting-time distributions, (b) temporal-size distributions.

Paper's observations to reproduce:

* (a) under the online scheduler the waiting-time mass concentrates at
  small values and the tail is *far* shorter than under batch
  scheduling (paper: max 19 h vs 674 h on CTC, 75 h vs 272.5 h on KTH);
* (b) the workloads themselves differ: most KTH jobs are under 2 hours,
  while at most ~14 % of CTC jobs are.
"""

from __future__ import annotations

import numpy as np

from ..metrics.report import format_series
from ..metrics.stats import HOUR, duration_histogram, waiting_time_histogram
from .config import DEFAULT_CONFIG, ExperimentConfig
from .runner import get_result
from .store import RunSpec

__all__ = [
    "duration_distributions",
    "max_waits",
    "required_runs",
    "run",
    "waiting_distributions",
]

WORKLOADS = ("CTC", "KTH")


def required_runs(config: ExperimentConfig = DEFAULT_CONFIG) -> list[RunSpec]:
    """The simulations this figure consumes (for the parallel harness)."""
    return [
        RunSpec.normalized(workload, sched, config)
        for workload in WORKLOADS
        for sched in ("online", "batch")
    ]


def waiting_distributions(
    config: ExperimentConfig = DEFAULT_CONFIG, max_hours: float = 10.0
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Waiting-time frequency curves for CTC/KTH × online/batch."""
    curves: dict[str, np.ndarray] = {}
    lefts = np.array([])
    for workload in WORKLOADS:
        for sched in ("online", "batch"):
            result = get_result(workload, sched, config)
            lefts, freq = waiting_time_histogram(
                result.records, bin_hours=1.0, max_hours=max_hours
            )
            curves[f"{workload}-{sched}"] = freq
    return lefts, curves


def duration_distributions(
    config: ExperimentConfig = DEFAULT_CONFIG, max_hours: float = 44.0
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Temporal-size frequency curves for the CTC and KTH workloads."""
    curves: dict[str, np.ndarray] = {}
    lefts = np.array([])
    for workload in WORKLOADS:
        result = get_result(workload, "online", config)  # workload is scheduler-independent
        lefts, freq = duration_histogram(result.records, bin_hours=2.0, max_hours=max_hours)
        curves[workload] = freq
    return lefts, curves


def max_waits(config: ExperimentConfig = DEFAULT_CONFIG) -> dict[str, float]:
    """Maximum waiting time (hours) per workload/scheduler — the tails."""
    out = {}
    for workload in WORKLOADS:
        for sched in ("online", "batch"):
            result = get_result(workload, sched, config)
            waits = [r.waiting_time for r in result.accepted]
            out[f"{workload}-{sched}"] = max(waits) / HOUR if waits else 0.0
    return out


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> str:
    lefts_w, wait_curves = waiting_distributions(config)
    part_a = format_series(
        lefts_w,
        wait_curves,
        "W_r (h)",
        title="Figure 4(a): waiting-time distribution (CTC and KTH)",
    )
    lefts_d, dur_curves = duration_distributions(config)
    part_b = format_series(
        lefts_d,
        dur_curves,
        "l_r (h)",
        title="Figure 4(b): temporal-size distribution (CTC and KTH)",
    )
    tails = max_waits(config)
    tail_txt = "max waits (h): " + ", ".join(f"{k}={v:.1f}" for k, v in tails.items())
    return f"{part_a}\n\n{part_b}\n\n{tail_txt}"


if __name__ == "__main__":  # pragma: no cover
    print(run())
