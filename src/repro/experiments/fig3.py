"""Figure 3 — temporal penalty ``P^l_r`` vs temporal size, KTH workload.

Paper's observations to reproduce:

* (a) across all jobs, *small* jobs suffer an order of magnitude (or
  more) higher temporal penalty under the batch scheduler than under the
  online co-allocator;
* (b) in the 2–10 hour mid-range, the online algorithm penalizes larger
  jobs somewhat more than the batch scheduler does.
"""

from __future__ import annotations

import numpy as np

from ..metrics.report import format_series
from ..metrics.stats import temporal_penalty_by_duration
from .config import DEFAULT_CONFIG, ExperimentConfig
from .runner import get_result
from .store import RunSpec

__all__ = ["required_runs", "run", "series", "small_job_penalty_ratio"]

WORKLOAD = "KTH"


def required_runs(config: ExperimentConfig = DEFAULT_CONFIG) -> list[RunSpec]:
    """The simulations this figure consumes (for the parallel harness)."""
    return [
        RunSpec.normalized(WORKLOAD, "online", config),
        RunSpec.normalized(WORKLOAD, "batch", config),
    ]


def series(
    config: ExperimentConfig = DEFAULT_CONFIG, max_hours: float = 20.0
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Per-duration-bin mean penalty for the online and batch schedulers."""
    online = get_result(WORKLOAD, "online", config)
    batch = get_result(WORKLOAD, "batch", config)
    lefts, online_pen = temporal_penalty_by_duration(
        online.records, bin_hours=1.0, max_hours=max_hours
    )
    _, batch_pen = temporal_penalty_by_duration(
        batch.records, bin_hours=1.0, max_hours=max_hours
    )
    return lefts, {"KTH-online": online_pen, "KTH-batch": batch_pen}


def small_job_penalty_ratio(config: ExperimentConfig = DEFAULT_CONFIG) -> float:
    """batch/online penalty ratio for jobs under 2 hours (paper: >= ~10x)."""
    lefts, curves = series(config)
    mask = lefts < 2.0
    online = np.nanmean(curves["KTH-online"][mask])
    batch = np.nanmean(curves["KTH-batch"][mask])
    if online == 0:
        return float("inf") if batch > 0 else 1.0
    return float(batch / online)


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> str:
    lefts, curves = series(config)
    full = format_series(
        lefts,
        {k: v for k, v in curves.items()},
        "l_r (h)",
        title="Figure 3(a): temporal penalty P^l vs temporal size, KTH (all jobs)",
    )
    mid_mask = (lefts >= 2.0) & (lefts < 10.0)
    mid = format_series(
        lefts[mid_mask],
        {k: v[mid_mask] for k, v in curves.items()},
        "l_r (h)",
        title="Figure 3(b): temporal penalty P^l, medium jobs (2-10 h)",
    )
    ratio = small_job_penalty_ratio(config)
    return f"{full}\n\n{mid}\n\nbatch/online penalty ratio for jobs < 2 h: {ratio:.1f}x"


if __name__ == "__main__":  # pragma: no cover
    print(run())
