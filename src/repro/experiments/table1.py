"""Table 1 — features of the workloads used in the performance evaluation.

Paper's rows:

========  ==========  =======  ===================
Workload  processors  jobs     avg estimated (h)
========  ==========  =======  ===================
CTC       512         39,734   5.82
KTH       128         28,481   2.46
HPC2N     240         202,825  4.72
========  ==========  =======  ===================

Ours regenerates the same columns from the calibrated synthetic
generators; the *processors* and *jobs* columns are exact, the average
duration is matched by calibration (Section 3 of DESIGN.md).
"""

from __future__ import annotations

from ..metrics.report import format_table
from ..workloads.archive import workload_table
from .config import DEFAULT_CONFIG, ExperimentConfig
from .store import RunSpec

__all__ = ["required_runs", "run", "rows"]


def required_runs(config: ExperimentConfig = DEFAULT_CONFIG) -> list[RunSpec]:
    """Table 1 measures the workloads themselves — no simulations."""
    return []

PAPER_ROWS = {
    "CTC": (512, 39734, 5.82),
    "KTH": (128, 28481, 2.46),
    "HPC2N": (240, 202825, 4.72),
}


def rows(config: ExperimentConfig = DEFAULT_CONFIG) -> list[tuple[str, int, int, float]]:
    """(workload, processors, jobs, measured avg l_r hours) per system."""
    return workload_table(n_jobs=config.n_jobs, seed=config.seed)


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> str:
    """Render Table 1 with paper values side by side."""
    table = []
    for name, procs, jobs, avg in rows(config):
        paper_procs, paper_jobs, paper_avg = PAPER_ROWS[name]
        table.append([name, procs, jobs, paper_jobs, avg, paper_avg])
    return format_table(
        ["Workload", "N procs", "jobs (run)", "jobs (paper)", "avg l_r (h)", "paper avg (h)"],
        table,
        title="Table 1: workload features (measured vs paper)",
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
