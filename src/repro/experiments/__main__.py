"""CLI: regenerate every table and figure.

Usage::

    python -m repro.experiments [smoke|default|full]
"""

import sys

from . import SCALES, run_all

if __name__ == "__main__":
    scale = sys.argv[1] if len(sys.argv) > 1 else "default"
    try:
        config = SCALES[scale]
    except KeyError:
        sys.exit(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    print(run_all(config))
