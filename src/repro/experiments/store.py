"""Content-addressed simulation-result store (two tiers).

The old per-process memo in ``runner.py`` keyed results on a hand-picked
tuple of config fields and silently dropped ``delta_t`` — two configs
differing only in the retry increment collided, and the second caller
got the first caller's :class:`~repro.sim.driver.SimResult`.  This store
replaces hand-picked keys with a content address:

* **every** :class:`~repro.experiments.config.ExperimentConfig` field
  (enumerated via ``dataclasses.fields``, so future knobs join the key
  automatically) plus the run coordinates ``(workload, scheduler, ρ)``;
* a **code fingerprint** — a digest over the source of every module the
  simulation outcome depends on (``core``, ``sim``, ``schedulers``,
  ``workloads`` and the experiment config) — so editing the simulator
  invalidates old entries instead of replaying them;
* the serialization format version, so layout changes read as misses.

Two tiers: an in-process dict (same-object hits, what the experiment
modules rely on within one run) in front of an optional on-disk layer of
gzipped JSON payloads, enabled with ``REPRO_CACHE_DIR`` or ``--cache-dir``
so full-scale runs survive process restarts.  Disk entries that are
corrupt, truncated, or written by an older format/fingerprint are
treated as misses, never as errors.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any, Callable

from ..sim.driver import RESULT_FORMAT, SimResult, run_simulation
from ..workloads.archive import generate_workload
from ..workloads.reservations import with_advance_reservations
from .config import DEFAULT_CONFIG, ExperimentConfig

__all__ = [
    "RunSpec",
    "ResultStore",
    "code_fingerprint",
    "compute_result",
    "configure_default_store",
    "default_store",
]

#: environment variable enabling the disk tier for every store consumer
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: packages whose source participates in the code fingerprint — exactly
#: the modules a simulation outcome can depend on
_FINGERPRINT_PACKAGES = ("core", "sim", "schedulers", "workloads")

_fingerprint_cache: str | None = None


def code_fingerprint() -> str:
    """Digest over the simulation-relevant source tree (cached).

    Any edit to the allocator, simulator, schedulers, workload models or
    the experiment config changes this value and thereby every cache
    key — stale results from older code can never be served.
    """
    global _fingerprint_cache
    if _fingerprint_cache is not None:
        return _fingerprint_cache
    package_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    paths: list[Path] = [Path(__file__).parent / "config.py"]
    for package in _FINGERPRINT_PACKAGES:
        paths.extend((package_root / package).rglob("*.py"))
    for path in sorted(paths):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    _fingerprint_cache = digest.hexdigest()[:16]
    return _fingerprint_cache


@dataclass(frozen=True, slots=True)
class RunSpec:
    """One simulation run, fully specified and content-addressable.

    ``scheduler`` is stored *normalized* (the ``"batch"`` alias resolved
    against the config), so ``batch`` and the comparator it points at
    share one entry.
    """

    workload: str
    scheduler: str
    rho: float
    config: ExperimentConfig

    @classmethod
    def normalized(
        cls,
        workload: str,
        scheduler: str,
        config: ExperimentConfig = DEFAULT_CONFIG,
        rho: float = 0.0,
    ) -> "RunSpec":
        if scheduler == "batch":
            scheduler = config.batch_scheduler
        return cls(workload=workload, scheduler=scheduler, rho=float(rho), config=config)

    def describe(self) -> dict[str, Any]:
        """Human-readable identity (also hashed to form :meth:`key`)."""
        return {
            "workload": self.workload,
            "scheduler": self.scheduler,
            "rho": repr(self.rho),
            # every config field, present and future, joins the key
            "config": {f.name: repr(getattr(self.config, f.name)) for f in fields(self.config)},
        }

    @property
    def key(self) -> str:
        """Content address: run identity + code fingerprint + format."""
        material = json.dumps(
            {
                "spec": self.describe(),
                "fingerprint": code_fingerprint(),
                "format": RESULT_FORMAT,
            },
            sort_keys=True,
        )
        return hashlib.sha256(material.encode()).hexdigest()[:32]

    @property
    def label(self) -> str:
        """Short display form for progress lines and reports."""
        rho = f" rho={self.rho:g}" if self.rho else ""
        return f"{self.workload}/{self.scheduler}{rho}"


def compute_result(spec: RunSpec) -> SimResult:
    """Run the simulation a spec describes (what workers execute).

    Importable at module top level so ``ProcessPoolExecutor`` can ship
    specs to worker processes by pickle.
    """
    from .runner import make_scheduler  # late: runner imports this module

    config = spec.config
    requests = generate_workload(spec.workload, n_jobs=config.n_jobs, seed=config.seed)
    if spec.rho > 0.0:
        requests = with_advance_reservations(requests, spec.rho, seed=config.seed)
    return run_simulation(make_scheduler(spec.scheduler, spec.workload, config), requests)


class ResultStore:
    """Two-tier content-addressed cache of :class:`SimResult` objects.

    ``cache_dir=None`` falls back to ``$REPRO_CACHE_DIR`` (unset = no
    disk tier); pass ``cache_dir=""`` to force memory-only regardless of
    the environment (benchmarks use this for their cold baseline).
    """

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        if cache_dir is None:
            cache_dir = os.environ.get(CACHE_DIR_ENV) or None
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self._memory: dict[str, SimResult] = {}

    # -- lookup ------------------------------------------------------------

    def get(self, spec: RunSpec) -> SimResult | None:
        """Memory first, then disk (populating memory on a disk hit)."""
        key = spec.key
        hit = self._memory.get(key)
        if hit is not None:
            return hit
        payload = self._read_disk(key)
        if payload is None:
            return None
        try:
            result = SimResult.from_payload(payload)
        except (ValueError, KeyError, TypeError):
            return None  # older layout or mangled rows: recompute
        self._memory[key] = result
        return result

    def put(self, spec: RunSpec, result: SimResult) -> None:
        key = spec.key
        self._memory[key] = result
        self._write_disk(key, spec, result.to_payload())

    def put_payload(self, spec: RunSpec, payload: dict[str, Any]) -> SimResult:
        """Adopt a worker-serialized payload (parallel harness path)."""
        result = SimResult.from_payload(payload)
        key = spec.key
        self._memory[key] = result
        self._write_disk(key, spec, payload)
        return result

    def get_or_compute(
        self, spec: RunSpec, compute: Callable[[RunSpec], SimResult] = compute_result
    ) -> SimResult:
        cached = self.get(spec)
        if cached is not None:
            return cached
        result = compute(spec)
        self.put(spec, result)
        return result

    # -- disk tier ---------------------------------------------------------

    def _entry_path(self, key: str) -> Path | None:
        return self.cache_dir / f"{key}.json.gz" if self.cache_dir else None

    def _read_disk(self, key: str) -> dict[str, Any] | None:
        path = self._entry_path(key)
        if path is None:
            return None
        try:
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, EOFError, json.JSONDecodeError, UnicodeDecodeError):
            return None  # missing, truncated or corrupt: a miss, not a crash
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def _write_disk(self, key: str, spec: RunSpec, payload: dict[str, Any]) -> None:
        path = self._entry_path(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "fingerprint": code_fingerprint(),
            "spec": spec.describe(),
            "payload": payload,
        }
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            with gzip.open(tmp, "wt", encoding="utf-8") as fh:
                json.dump(entry, fh, separators=(",", ":"))
            os.replace(tmp, path)  # atomic: parallel workers race benignly
        except OSError:
            tmp.unlink(missing_ok=True)  # cache write failure is non-fatal

    # -- maintenance -------------------------------------------------------

    def clear_memory(self) -> None:
        self._memory.clear()

    def clear(self) -> int:
        """Drop both tiers; returns the number of disk entries removed."""
        self.clear_memory()
        removed = 0
        if self.cache_dir and self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*.json.gz"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def info(self) -> dict[str, Any]:
        """Shape of both tiers (the ``repro cache info`` payload)."""
        disk_entries = 0
        disk_bytes = 0
        if self.cache_dir and self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*.json.gz"):
                try:
                    disk_bytes += path.stat().st_size
                except OSError:
                    continue
                disk_entries += 1
        return {
            "cache_dir": str(self.cache_dir) if self.cache_dir else None,
            "memory_entries": len(self._memory),
            "disk_entries": disk_entries,
            "disk_bytes": disk_bytes,
            "fingerprint": code_fingerprint(),
            "format": RESULT_FORMAT,
        }


_default_store: ResultStore | None = None


def default_store() -> ResultStore:
    """The process-wide store ``get_result`` routes through (lazy)."""
    global _default_store
    if _default_store is None:
        _default_store = ResultStore()
    return _default_store


def configure_default_store(cache_dir: str | Path | None) -> ResultStore:
    """Point the process-wide store at ``cache_dir`` (CLI ``--cache-dir``).

    Replaces the store, so previously memoized results are dropped —
    call before running experiments, as the CLI does.
    """
    global _default_store
    _default_store = ResultStore(cache_dir)
    return _default_store
