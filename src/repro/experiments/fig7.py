"""Figure 7 — (a) average waiting time and (b) operations per request vs ρ.

Observations to reproduce:

* (a) the average waiting time grows with the advance-reservation
  fraction ρ for all three workloads (a larger fraction of jobs
  voluntarily waits for its future start time);
* (b) the number of computational operations per scheduled request stays
  roughly flat as ρ grows — advance reservations tend to find room at
  their requested slot, so fewer retry slots are searched even though
  the trees hold more fragments.
"""

from __future__ import annotations

import numpy as np

from ..metrics.report import format_series
from .config import DEFAULT_CONFIG, ExperimentConfig
from .runner import get_result
from .store import RunSpec

__all__ = ["RHOS", "ops_series", "required_runs", "run", "waiting_series"]

RHOS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
WORKLOADS = ("CTC", "KTH", "HPC2N")


def required_runs(config: ExperimentConfig = DEFAULT_CONFIG) -> list[RunSpec]:
    """The simulations this figure consumes (for the parallel harness)."""
    return [
        RunSpec.normalized(workload, "online", config, rho=rho)
        for workload in WORKLOADS
        for rho in RHOS
    ]


def waiting_series(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> tuple[tuple[float, ...], dict[str, np.ndarray]]:
    """Average waiting time (seconds, from submission) per workload vs ρ."""
    curves: dict[str, np.ndarray] = {}
    for workload in WORKLOADS:
        means = []
        for rho in RHOS:
            result = get_result(workload, "online", config, rho=rho)
            waits = [r.start - r.qr for r in result.accepted]
            means.append(float(np.mean(waits)) if waits else 0.0)
        curves[workload] = np.array(means)
    return RHOS, curves


def ops_series(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> tuple[tuple[float, ...], dict[str, np.ndarray]]:
    """Mean elementary operations per request per workload vs ρ."""
    curves: dict[str, np.ndarray] = {}
    for workload in WORKLOADS:
        means = []
        for rho in RHOS:
            result = get_result(workload, "online", config, rho=rho)
            ops = [r.ops for r in result.records]
            means.append(float(np.mean(ops)) if ops else 0.0)
        curves[workload] = np.array(means)
    return RHOS, curves


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> str:
    rhos, wait_curves = waiting_series(config)
    labels = [f"{rho:g}" for rho in rhos]
    part_a = format_series(
        labels,
        wait_curves,
        "rho",
        title="Figure 7(a): average waiting time (s) vs advance-reservation fraction",
        precision=0,
    )
    _, op_curves = ops_series(config)
    part_b = format_series(
        labels,
        op_curves,
        "rho",
        title="Figure 7(b): operations per request vs advance-reservation fraction",
        precision=0,
    )
    return f"{part_a}\n\n{part_b}"


if __name__ == "__main__":  # pragma: no cover
    print(run())
