"""Shared simulation runner, backed by the content-addressed store.

Several experiments consume the *same* simulation (e.g. Figures 3, 4, 5
and Table 2 all analyze the CTC/KTH online and batch runs), so results
are cached.  Historically this module kept its own memo dict keyed on a
hand-picked tuple that omitted ``config.delta_t`` — two configs
differing only in the retry increment collided and the second caller got
stale results.  ``get_result`` is now a thin shim over
:mod:`repro.experiments.store`, which keys on a hash of **every** config
field plus a code-version fingerprint; runs are fully deterministic
given the config seed, which makes the cache safe.
"""

from __future__ import annotations

from ..schedulers import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FCFSScheduler,
    OnlineScheduler,
)
from ..schedulers.base import SchedulerBase
from ..sim.driver import SimResult
from ..workloads.archive import WORKLOADS
from .config import DEFAULT_CONFIG, ExperimentConfig
from .store import RunSpec, default_store

__all__ = ["get_result", "make_scheduler", "clear_cache"]

_BATCH_FACTORIES = {
    "fcfs": FCFSScheduler,
    "easy": EasyBackfillScheduler,
    "conservative": ConservativeBackfillScheduler,
}


def clear_cache() -> None:
    """Drop in-process memoized results (tests use this for isolation).

    Disk-tier entries, when a cache dir is configured, stay — they are
    content-addressed and survive restarts by design; use ``repro cache
    clear`` (or :meth:`ResultStore.clear`) to drop those too.
    """
    default_store().clear_memory()


def make_scheduler(
    kind: str, workload: str, config: ExperimentConfig = DEFAULT_CONFIG
) -> SchedulerBase:
    """Instantiate a scheduler sized for one of the archive systems."""
    n_servers = WORKLOADS[workload].n_servers
    if kind == "online":
        return OnlineScheduler(
            n_servers=n_servers,
            tau=config.tau,
            q_slots=config.q_slots,
            delta_t=config.delta_t,
            r_max=config.r_max,
        )
    try:
        return _BATCH_FACTORIES[kind](n_servers)
    except KeyError:
        raise ValueError(
            f"unknown scheduler {kind!r}; choose online, fcfs, easy or conservative"
        ) from None


def get_result(
    workload: str,
    scheduler: str,
    config: ExperimentConfig = DEFAULT_CONFIG,
    rho: float = 0.0,
) -> SimResult:
    """Simulate ``workload`` under ``scheduler`` with an AR fraction ``rho``.

    ``scheduler`` is ``"online"``, ``"fcfs"``, ``"easy"``,
    ``"conservative"`` or ``"batch"`` (an alias for the config's batch
    comparator).  Results come from the process-wide
    :class:`~repro.experiments.store.ResultStore`: memoized per process,
    and persisted across processes when a cache dir is configured.
    """
    spec = RunSpec.normalized(workload, scheduler, config, rho)
    return default_store().get_or_compute(spec)
