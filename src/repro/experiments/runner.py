"""Shared simulation runner with per-process memoization.

Several experiments consume the *same* simulation (e.g. Figures 3, 4, 5
and Table 2 all analyze the CTC/KTH online and batch runs), so results
are cached on ``(workload, scheduler, ρ, config)``.  Runs are fully
deterministic given the config seed, which makes the cache safe.
"""

from __future__ import annotations

from ..schedulers import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FCFSScheduler,
    OnlineScheduler,
)
from ..schedulers.base import SchedulerBase
from ..sim.driver import SimResult, run_simulation
from ..workloads.archive import WORKLOADS, generate_workload
from ..workloads.reservations import with_advance_reservations
from .config import DEFAULT_CONFIG, ExperimentConfig

__all__ = ["get_result", "make_scheduler", "clear_cache"]

_BATCH_FACTORIES = {
    "fcfs": FCFSScheduler,
    "easy": EasyBackfillScheduler,
    "conservative": ConservativeBackfillScheduler,
}

_cache: dict[tuple, SimResult] = {}


def clear_cache() -> None:
    """Drop memoized simulation results (tests use this for isolation)."""
    _cache.clear()


def make_scheduler(
    kind: str, workload: str, config: ExperimentConfig = DEFAULT_CONFIG
) -> SchedulerBase:
    """Instantiate a scheduler sized for one of the archive systems."""
    n_servers = WORKLOADS[workload].n_servers
    if kind == "online":
        return OnlineScheduler(
            n_servers=n_servers,
            tau=config.tau,
            q_slots=config.q_slots,
            delta_t=config.delta_t,
            r_max=config.r_max,
        )
    try:
        return _BATCH_FACTORIES[kind](n_servers)
    except KeyError:
        raise ValueError(
            f"unknown scheduler {kind!r}; choose online, fcfs, easy or conservative"
        ) from None


def get_result(
    workload: str,
    scheduler: str,
    config: ExperimentConfig = DEFAULT_CONFIG,
    rho: float = 0.0,
) -> SimResult:
    """Simulate ``workload`` under ``scheduler`` with an AR fraction ``rho``.

    ``scheduler`` is ``"online"``, ``"fcfs"``, ``"easy"``,
    ``"conservative"`` or ``"batch"`` (an alias for the config's batch
    comparator).  Results are memoized per process.
    """
    if scheduler == "batch":
        scheduler = config.batch_scheduler
    key = (workload, scheduler, rho, config.n_jobs, config.seed, config.tau, config.q_slots)
    if key in _cache:
        return _cache[key]
    requests = generate_workload(workload, n_jobs=config.n_jobs, seed=config.seed)
    if rho > 0.0:
        requests = with_advance_reservations(requests, rho, seed=config.seed)
    result = run_simulation(make_scheduler(scheduler, workload, config), requests)
    _cache[key] = result
    return result
