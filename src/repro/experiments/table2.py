"""Table 2 — scheduling attempts as a function of spatial size.

Paper's rows (groups of 50 processors, '—' where no jobs fall):

Workload / n_r  (0:50]  (50:100]  (100:150]  (150:200]  (250:300]  (350:400]
CTC             2.96    5.34      7.22       13.25      —          127.44
KTH             10.27   60        120        —          —          —

Observations to reproduce: attempts grow with ``n_r`` (wider jobs face a
more fragmented system), and KTH — the short-job, high-fragmentation
workload — needs more attempts than CTC at every size.
"""

from __future__ import annotations

from ..metrics.report import format_table
from ..metrics.stats import attempts_by_spatial_bin
from .config import DEFAULT_CONFIG, ExperimentConfig
from .runner import get_result
from .store import RunSpec

__all__ = ["required_runs", "run", "rows"]

WORKLOADS = ("CTC", "KTH")
BIN = 50


def required_runs(config: ExperimentConfig = DEFAULT_CONFIG) -> list[RunSpec]:
    """The simulations this table consumes (for the parallel harness)."""
    return [RunSpec.normalized(workload, "online", config) for workload in WORKLOADS]


def rows(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> dict[str, dict[tuple[int, int], float]]:
    """Per-workload mapping of (lo, hi] spatial group -> mean attempts."""
    return {
        w: attempts_by_spatial_bin(get_result(w, "online", config).records, bin_width=BIN)
        for w in WORKLOADS
    }


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> str:
    data = rows(config)
    groups = sorted({g for table in data.values() for g in table})
    headers = ["Workload / n_r"] + [f"({lo}:{hi}]" for lo, hi in groups]
    body = []
    for workload in WORKLOADS:
        body.append([workload] + [data[workload].get(g) for g in groups])
    return format_table(
        headers, body, title="Table 2: scheduling attempts vs spatial size (online)"
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
