"""Deadline support — the Section 5.2 extension, measured.

The paper notes its algorithm "can be easily extended to support user's
deadline by setting the starting time to the earliest time a given job
needs to start".  Our implementation goes through ``Request.deadline``
(the retry ladder stops once a start would miss ``deadline − l_r``).
This experiment quantifies the resulting admission behaviour: the
fraction of jobs admitted as a function of deadline *slack* — the
allowance factor ``deadline = q_r + slack · l_r``.

Expected shape: the no-deadline run (whose only limit is the
``R_max·Δt`` ladder) admits the most jobs.  Among finite slacks the
relationship is *not* monotone at high load — an effect worth knowing
about before deploying deadlines as an admission policy: a job with a
tight deadline that cannot start is rejected instantly and never loads
the calendar, so later arrivals find more room; generous slack lets jobs
park deep in the schedule, displacing future arrivals.  Tightening
everyone's deadline is a form of early load shedding.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

import numpy as np

from ..core.types import Request
from ..metrics.report import format_series
from ..sim.driver import run_simulation
from ..workloads.archive import generate_workload
from .config import DEFAULT_CONFIG, ExperimentConfig
from .runner import make_scheduler

__all__ = ["acceptance_by_slack", "run", "SLACKS"]

SLACKS = (1.0, 1.5, 2.0, 3.0, 5.0, None)  # None = no deadline
WORKLOAD = "KTH"


def _with_deadlines(requests: list[Request], slack: float | None) -> list[Request]:
    if slack is None:
        return list(requests)
    return [dc_replace(r, deadline=r.qr + slack * r.lr) for r in requests]


def acceptance_by_slack(
    config: ExperimentConfig = DEFAULT_CONFIG, slacks: tuple = SLACKS
) -> tuple[list[str], np.ndarray]:
    """Acceptance rate of the online scheduler per deadline slack."""
    base = generate_workload(WORKLOAD, n_jobs=config.n_jobs, seed=config.seed)
    labels = []
    rates = []
    for slack in slacks:
        requests = _with_deadlines(base, slack)
        result = run_simulation(make_scheduler("online", WORKLOAD, config), requests)
        labels.append("none" if slack is None else f"{slack:g}x")
        rates.append(result.acceptance_rate)
    return labels, np.array(rates)


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> str:
    labels, rates = acceptance_by_slack(config)
    return format_series(
        labels,
        {"acceptance": rates},
        "slack",
        title=f"Deadline extension, {WORKLOAD}: acceptance vs deadline slack "
        "(deadline = q_r + slack * l_r)",
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
