"""Load sweep — online vs batch across offered loads (beyond the paper).

The paper's conclusion claims the online algorithm "may achieve higher
utilization while providing smaller delays".  A single operating point
cannot show that trade-off; this sweep varies the offered load and
reports, for the online co-allocator and the EASY comparator:

* mean waiting time,
* achieved utilization,
* acceptance rate (the online scheduler sheds load past its
  ``R_max·Δt`` delay bound; batch queues unboundedly),
* mean bounded slowdown and Jain fairness over waits.

Together they show where each scheduler's regime lies: below saturation
the two match; past it, batch buys its perfect acceptance with unbounded
tails while online holds its delay bound by rejecting a small fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.extended import jain_fairness, mean_bounded_slowdown
from ..metrics.report import format_table
from ..metrics.stats import HOUR
from ..sim.driver import run_simulation
from ..workloads.archive import generate_workload
from .config import DEFAULT_CONFIG, ExperimentConfig
from .runner import make_scheduler

__all__ = ["LoadPoint", "sweep", "run", "LOADS"]

LOADS = (0.6, 0.75, 0.9, 1.05)
WORKLOAD = "KTH"


@dataclass(frozen=True, slots=True)
class LoadPoint:
    """Both schedulers' headline numbers at one offered load."""

    load: float
    scheduler: str
    mean_wait_h: float
    utilization: float
    acceptance: float
    slowdown: float
    fairness: float


def sweep(
    config: ExperimentConfig = DEFAULT_CONFIG, loads: tuple[float, ...] = LOADS
) -> list[LoadPoint]:
    """Run the sweep; one LoadPoint per (load, scheduler)."""
    points: list[LoadPoint] = []
    for load in loads:
        requests = generate_workload(
            WORKLOAD, n_jobs=config.n_jobs, seed=config.seed, offered_load=load
        )
        for kind in ("online", config.batch_scheduler):
            result = run_simulation(make_scheduler(kind, WORKLOAD, config), list(requests))
            waits = [r.waiting_time for r in result.accepted]
            points.append(
                LoadPoint(
                    load=load,
                    scheduler=result.scheduler,
                    mean_wait_h=float(np.mean(waits)) / HOUR if waits else 0.0,
                    utilization=result.utilization,
                    acceptance=result.acceptance_rate,
                    slowdown=mean_bounded_slowdown(result.records),
                    fairness=jain_fairness(result.records),
                )
            )
    return points


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> str:
    points = sweep(config)
    rows = [
        [p.load, p.scheduler, p.mean_wait_h, p.utilization, p.acceptance, p.slowdown, p.fairness]
        for p in points
    ]
    return format_table(
        ["load", "scheduler", "mean W (h)", "util", "accepted", "slowdown", "fairness"],
        rows,
        title=f"Load sweep, {WORKLOAD}: online vs batch across offered loads",
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
