"""Scheduler interface shared by the online co-allocator and the batch baselines.

A *scheduler* consumes :class:`~repro.core.types.Request` objects wrapped
in mutable :class:`Job` records, decides when each job runs, and fills in
the outcome fields.  The simulation driver
(:mod:`repro.sim.driver`) owns the event engine and submits jobs at their
arrival times; schedulers schedule their own internal events (job
completions, deferred queue entries for advance reservations).

Two families implement the interface:

* :class:`~repro.schedulers.online.OnlineScheduler` — the paper's
  contribution; decides at submission time, committing future resources in
  the availability calendar.
* :class:`BatchSchedulerBase` subclasses (FCFS, EASY, conservative) —
  resource-driven queue schedulers that start jobs only when processors
  free up, the comparators of Section 5.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from ..sim.cluster import Cluster
from ..sim.job import Job, JobState

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Engine

__all__ = ["Job", "JobState", "SchedulerBase", "BatchSchedulerBase"]


class SchedulerBase(abc.ABC):
    """Common interface the simulation driver drives."""

    #: human-readable name used in reports ("online", "easy", ...)
    name = "abstract"

    def __init__(self, n_servers: int) -> None:
        if n_servers <= 0:
            raise ValueError(f"need at least one server, got {n_servers}")
        self.n_servers = n_servers
        self.engine: "Engine | None" = None

    def bind(self, engine: "Engine") -> None:
        """Attach the event engine before the simulation starts."""
        self.engine = engine

    @property
    def now(self) -> float:
        assert self.engine is not None, "scheduler used before bind()"
        return self.engine.now

    @abc.abstractmethod
    def submit(self, job: Job) -> None:
        """Handle a job arriving at the current simulation time."""

    def finalize(self) -> None:
        """Hook called once after the event heap drains."""

    def utilization(self, now: float, since: float = 0.0) -> float:
        """Average busy fraction over the simulation span."""
        raise NotImplementedError


class BatchSchedulerBase(SchedulerBase):
    """Queue + cluster machinery shared by every batch baseline.

    Subclasses implement :meth:`_dispatch`, which inspects ``self.queue``
    (arrival order) and starts whatever its policy allows *right now*.
    Jobs whose earliest start ``s_r`` lies in the future (advance
    reservations replayed through a batch scheduler) enter the queue when
    they become eligible, matching how a queue-based system that cannot
    plan ahead would treat them.
    """

    def __init__(self, n_servers: int) -> None:
        super().__init__(n_servers)
        self.cluster: Cluster | None = None
        self.queue: list[Job] = []
        self.running: list[Job] = []

    def bind(self, engine: "Engine") -> None:
        super().bind(engine)
        self.cluster = Cluster(self.n_servers, start_time=engine.now)

    def submit(self, job: Job) -> None:
        if job.request.nr > self.n_servers:
            job.state = JobState.REJECTED
            return
        if job.request.sr > self.now:
            self.engine.at(job.request.sr, lambda: self._enqueue(job))  # type: ignore[union-attr]
        else:
            self._enqueue(job)

    def _enqueue(self, job: Job) -> None:
        job.state = JobState.QUEUED
        self.queue.append(job)
        self._dispatch()

    def _start(self, job: Job) -> None:
        """Start a queued job immediately (helper for _dispatch)."""
        assert self.cluster is not None and self.engine is not None
        now = self.now
        self.cluster.acquire(job.request.nr, now)
        self.queue.remove(job)
        self.running.append(job)
        job.state = JobState.RUNNING
        job.start_time = now
        job.end_time = now + job.request.runtime  # actual completion
        job.estimated_end = now + job.request.lr  # what backfilling plans on
        self.engine.at(job.end_time, lambda: self._complete(job))

    def _complete(self, job: Job) -> None:
        assert self.cluster is not None
        self.cluster.release(job.request.nr, self.now)
        self.running.remove(job)
        job.state = JobState.DONE
        self._dispatch()

    @abc.abstractmethod
    def _dispatch(self) -> None:
        """Start every queued job the policy allows at the current time."""

    def utilization(self, now: float, since: float = 0.0) -> float:
        assert self.cluster is not None
        return self.cluster.utilization(now, since)
