"""Scheduler profiles: availability bookkeeping and runtime profiling.

Two distinct meanings of "profile" live here:

* :class:`AvailabilityProfile` — a step function ``t -> free processors``
  over ``[now, ∞)``, the standard bookkeeping structure of backfilling
  batch schedulers: EASY uses it to compute the queue head's *shadow
  time*, conservative backfilling gives every queued job a reservation in
  it.  Represented as a list of ``[time, free]`` breakpoints, ``free``
  holding from its breakpoint until the next; the list always starts at
  the current time and ends with a breakpoint whose ``free`` persists
  forever.

* :func:`profile_call` / :class:`ProfileReport` — cProfile-based runtime
  attribution for the scheduling hot path, behind ``repro profile`` and
  ``benchmarks/bench_hotpath.py --profile``.  When a future change slows
  replay down, the per-function cumulative times pin the regression to a
  code path instead of a wall-clock delta.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["AvailabilityProfile", "ProfileReport", "profile_call"]


@dataclass(slots=True)
class ProfileReport:
    """Outcome of one profiled call."""

    #: return value of the profiled function
    result: Any
    #: the raw profiler, for callers that want custom pstats queries
    profiler: cProfile.Profile

    def stats_text(self, sort: str = "cumulative", limit: int = 25) -> str:
        """The top ``limit`` entries of the pstats table as text."""
        buffer = io.StringIO()
        stats = pstats.Stats(self.profiler, stream=buffer)
        stats.strip_dirs().sort_stats(sort).print_stats(limit)
        return buffer.getvalue()

    def dump(self, path: str) -> None:
        """Write the binary profile for ``snakeviz``/``pstats`` post-mortems."""
        self.profiler.dump_stats(path)


def profile_call(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> ProfileReport:
    """Run ``fn(*args, **kwargs)`` under cProfile and return both outcomes."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    return ProfileReport(result=result, profiler=profiler)


class AvailabilityProfile:
    """Step function of free processors with reservation support."""

    def __init__(self, n_total: int, now: float = 0.0) -> None:
        if n_total <= 0:
            raise ValueError(f"need at least one processor, got {n_total}")
        self.n_total = n_total
        # breakpoints: parallel arrays, times strictly increasing
        self._times: list[float] = [float(now)]
        self._free: list[int] = [n_total]

    @property
    def now(self) -> float:
        return self._times[0]

    def free_at(self, t: float) -> int:
        """Free processors at time ``t`` (>= profile start)."""
        if t < self._times[0]:
            raise ValueError(f"{t} precedes profile start {self._times[0]}")
        return self._free[bisect_right(self._times, t) - 1]

    def _ensure_breakpoint(self, t: float) -> int:
        """Make ``t`` a breakpoint; returns its index."""
        idx = bisect_right(self._times, t) - 1
        if self._times[idx] == t:
            return idx
        self._times.insert(idx + 1, t)
        self._free.insert(idx + 1, self._free[idx])
        return idx + 1

    def reserve(self, start: float, end: float, n: int) -> None:
        """Subtract ``n`` processors over ``[start, end)``.

        Raises ``RuntimeError`` if that would drive any step negative —
        callers must check with :meth:`fits` or :meth:`earliest_fit`.
        """
        if not start < end:
            raise ValueError(f"reservation window [{start}, {end}) is empty")
        if start < self._times[0]:
            raise ValueError(f"reservation starts before profile start ({start})")
        lo = self._ensure_breakpoint(start)
        hi = self._ensure_breakpoint(end)
        for i in range(lo, hi):
            if self._free[i] < n:
                raise RuntimeError(
                    f"reserving {n} processors over [{start}, {end}) exceeds availability "
                    f"({self._free[i]} free at {self._times[i]})"
                )
        for i in range(lo, hi):
            self._free[i] -= n

    def fits(self, start: float, duration: float, n: int) -> bool:
        """True when ``n`` processors are free throughout ``[start, start+duration)``."""
        end = start + duration
        idx = bisect_right(self._times, start) - 1
        if idx < 0:
            return False
        while idx < len(self._times) and self._times[idx] < end:
            if self._free[idx] < n:
                return False
            idx += 1
        return True

    def earliest_fit(self, after: float, duration: float, n: int) -> float:
        """Earliest ``t >= after`` with ``n`` processors free for ``duration``.

        Always succeeds for ``n <= n_total`` because the profile's final
        step persists forever.
        """
        if n > self.n_total:
            raise ValueError(f"no fit possible: {n} > {self.n_total} processors")
        t = max(after, self._times[0])
        idx = bisect_right(self._times, t) - 1
        while True:
            # find the first step at/after t with enough processors
            while self._free[idx] < n:
                idx += 1
            start = max(t, self._times[idx])
            # check the window [start, start+duration)
            end = start + duration
            j = idx
            good = True
            while j < len(self._times) and self._times[j] < end:
                if self._free[j] < n:
                    good = False
                    break
                j += 1
            if good:
                return start
            idx = j  # restart the scan at the violating breakpoint

    def advance(self, now: float) -> None:
        """Drop history before ``now``; the profile then starts at ``now``."""
        if now < self._times[0]:
            raise ValueError(f"cannot move profile start backwards to {now}")
        idx = bisect_right(self._times, now) - 1
        if idx > 0:
            del self._times[:idx]
            del self._free[:idx]
        self._times[0] = now

    def steps(self) -> list[tuple[float, int]]:
        """A copy of the breakpoints, for inspection and tests."""
        return list(zip(self._times, self._free))

    def validate(self) -> None:
        """Invariants: increasing times, 0 <= free <= n_total."""
        for a, b in zip(self._times, self._times[1:]):
            assert a < b, f"breakpoints not increasing: {a} >= {b}"
        for t, f in zip(self._times, self._free):
            assert 0 <= f <= self.n_total, f"free count {f} out of range at {t}"
