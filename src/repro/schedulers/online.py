"""Simulator adapter for the paper's online co-allocation algorithm.

Unlike the batch baselines, the online scheduler decides a job's fate the
moment it arrives: the co-allocator either commits ``n_r`` concrete
servers at some start time (``s_r + kΔt``, ``k < R_max``) or rejects the
request outright.  Nothing happens at job completion — the future is
already encoded in the availability calendar — so the adapter's work is
advancing the calendar clock and translating allocations into job
outcomes.

Per-job operation counts (Figure 7(b)) are captured by differencing the
shared :class:`~repro.core.opcount.OpCounter` around each scheduling call.
"""

from __future__ import annotations

from ..core.calendar import AvailabilityCalendar
from ..core.coalloc import OnlineCoAllocator
from ..core.opcount import OpCounter
from ..sim.engine import Engine
from .base import Job, JobState, SchedulerBase

__all__ = ["OnlineScheduler"]


class OnlineScheduler(SchedulerBase):
    """The paper's algorithm behind the common scheduler interface.

    Parameters
    ----------
    n_servers:
        System size ``N``.
    tau:
        Slot length ``τ``; the paper uses the minimum temporal request
        size (15 minutes in the evaluation).
    q_slots:
        Horizon ``H = Q·τ``.
    delta_t:
        Retry increment ``Δt`` (default: ``τ``).
    r_max:
        Maximum scheduling attempts (default ``Q // 2``, the paper's
        setting).
    reclaim_early:
        When True and a request carries an ``actual_lr`` below its
        estimate, the surplus ``[start + actual, start + estimate)`` is
        released back to the calendar at the job's (actual) completion —
        the natural extension of the paper's model to inaccurate user
        estimates.  Off by default (the paper reserves full estimates).
    """

    name = "online"

    def __init__(
        self,
        n_servers: int,
        tau: float,
        q_slots: int,
        delta_t: float | None = None,
        r_max: int | None = None,
        reclaim_early: bool = False,
    ) -> None:
        super().__init__(n_servers)
        self.reclaim_early = reclaim_early
        self.counter = OpCounter()
        self.tau = float(tau)
        self.q_slots = q_slots
        self.delta_t = float(delta_t) if delta_t is not None else float(tau)
        self.r_max = r_max if r_max is not None else max(1, q_slots // 2)
        self.calendar: AvailabilityCalendar | None = None
        self.allocator: OnlineCoAllocator | None = None
        self._busy_area = 0.0

    def bind(self, engine: "Engine") -> None:
        super().bind(engine)
        self.calendar = AvailabilityCalendar(
            n_servers=self.n_servers,
            tau=self.tau,
            q_slots=self.q_slots,
            start_time=engine.now,
            counter=self.counter,
        )
        self.allocator = OnlineCoAllocator(
            calendar=self.calendar,
            delta_t=self.delta_t,
            r_max=self.r_max,
            counter=self.counter,
        )

    def submit(self, job: Job) -> None:
        assert self.calendar is not None and self.allocator is not None
        if job.request.nr > self.n_servers:
            job.state = JobState.REJECTED
            return
        self.calendar.advance(self.now)
        before = self.counter.total()
        outcome = self.allocator.schedule_detailed(job.request)
        job.ops = self.counter.total() - before
        allocation = outcome.allocation
        if allocation is None:
            job.state = JobState.REJECTED
            # actual attempts made: a deadline/horizon early exit stops
            # the retry loop before R_max
            job.attempts = outcome.attempts
            return
        job.state = JobState.DONE  # outcome fully determined at admission
        job.start_time = allocation.start
        job.estimated_end = allocation.end
        job.end_time = allocation.start + job.request.runtime
        job.attempts = allocation.attempts
        job.servers = allocation.servers
        if self.reclaim_early and job.end_time < allocation.end:
            assert self.engine is not None
            self.engine.at(job.end_time, lambda: self._reclaim(job, allocation))
            self._busy_area += (job.end_time - allocation.start) * allocation.nr
        else:
            self._busy_area += (allocation.end - allocation.start) * allocation.nr

    def _reclaim(self, job: Job, allocation) -> None:
        """Release the unused tail of an over-estimated reservation."""
        assert self.calendar is not None
        self.calendar.advance(self.now)
        for res in allocation.reservations:
            self.calendar.release(res.server, job.end_time, res.end)

    def utilization(self, now: float, since: float = 0.0) -> float:
        span = now - since
        if span <= 0:
            return 0.0
        return self._busy_area / (span * self.n_servers)
