"""Conservative backfilling.

Every queued job holds a reservation in a free-processor availability
profile; a later job may start early only if doing so delays *no*
reservation.  Implemented by replanning on every scheduling event:

1. rebuild the profile from the running jobs,
2. walk the queue in arrival order, giving each job the earliest start
   that fits the profile (and respects its ``s_r``),
3. start the jobs whose planned start is *now*.

Replanning from scratch subsumes the "compression" step of classic
conservative backfilling (when a job finishes early, later reservations
slide forward); it never assigns a job a later start than the incremental
variant would.
"""

from __future__ import annotations

from .base import BatchSchedulerBase
from .profile import AvailabilityProfile

__all__ = ["ConservativeBackfillScheduler"]


class ConservativeBackfillScheduler(BatchSchedulerBase):
    """FCFS with per-job reservations (no queued job is ever delayed)."""

    name = "conservative"

    def _dispatch(self) -> None:
        assert self.cluster is not None
        if not self.queue:
            return
        now = self.now
        if any(job.end_time <= now for job in self.running):
            # a completion event is pending at this same instant; it will
            # re-run _dispatch with a consistent cluster state
            return
        profile = AvailabilityProfile(self.n_servers, now=now)
        for job in self.running:
            # plan on the *estimate*; when the job finishes early the
            # completion event triggers a replan (compression)
            profile.reserve(now, job.estimated_end, job.request.nr)  # type: ignore[arg-type]
        to_start = []
        for job in self.queue:
            start = profile.earliest_fit(now, job.request.lr, job.request.nr)
            profile.reserve(start, start + job.request.lr, job.request.nr)
            if start == now:
                to_start.append(job)
        for job in to_start:
            self._start(job)
