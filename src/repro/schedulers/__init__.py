"""Schedulers: the online co-allocator and the batch baselines of Section 5.

* :class:`~repro.schedulers.online.OnlineScheduler` — the paper's algorithm;
* :class:`~repro.schedulers.fcfs.FCFSScheduler` — strict first-come-first-serve;
* :class:`~repro.schedulers.easy.EasyBackfillScheduler` — EASY/aggressive
  backfilling, the production-batch comparator;
* :class:`~repro.schedulers.conservative.ConservativeBackfillScheduler` —
  per-job-reservation backfilling;
* :class:`~repro.schedulers.profile.AvailabilityProfile` — the step-function
  bookkeeping backfillers rely on.
"""

from .base import BatchSchedulerBase, Job, JobState, SchedulerBase
from .conservative import ConservativeBackfillScheduler
from .easy import EasyBackfillScheduler
from .fcfs import FCFSScheduler
from .online import OnlineScheduler
from .profile import AvailabilityProfile

__all__ = [
    "AvailabilityProfile",
    "BatchSchedulerBase",
    "ConservativeBackfillScheduler",
    "EasyBackfillScheduler",
    "FCFSScheduler",
    "Job",
    "JobState",
    "OnlineScheduler",
    "SchedulerBase",
]
