"""Strict first-come-first-serve batch scheduling.

The simplest resource-driven policy: jobs start in arrival order, and a
blocked queue head blocks everyone behind it.  The paper cites this as the
source of "high fragmentation of resources, low utilization and limited
scheduling flexibility" — it exists here as the pessimistic end of the
baseline spectrum.
"""

from __future__ import annotations

from .base import BatchSchedulerBase

__all__ = ["FCFSScheduler"]


class FCFSScheduler(BatchSchedulerBase):
    """Start queued jobs strictly in order; stop at the first that won't fit."""

    name = "fcfs"

    def _dispatch(self) -> None:
        assert self.cluster is not None
        while self.queue and self.queue[0].request.nr <= self.cluster.free:
            self._start(self.queue[0])
