"""EASY (aggressive) backfilling.

The policy the paper's comparator systems (Maui/LSF-style batch
schedulers) ran: jobs are served FCFS, but when the queue head does not
fit, later jobs may *backfill* — start out of order — provided they do not
delay the head.  A backfill candidate is admissible when it either

* finishes before the head's *shadow time* (the earliest instant the head
  could possibly start, given the currently running jobs), or
* uses no more than the *extra* processors that will still be free at the
  shadow time after the head starts.

Only the queue head receives this protection; everyone else can be
overtaken indefinitely — the source of the long waiting-time tails the
paper measures against the online algorithm.
"""

from __future__ import annotations

from .base import BatchSchedulerBase, Job

__all__ = ["EasyBackfillScheduler"]


class EasyBackfillScheduler(BatchSchedulerBase):
    """FCFS with aggressive backfilling (Lifka's EASY policy)."""

    name = "easy"

    def _dispatch(self) -> None:
        assert self.cluster is not None
        # start jobs in order while they fit
        while self.queue and self.queue[0].request.nr <= self.cluster.free:
            self._start(self.queue[0])
        if not self.queue:
            return
        head = self.queue[0]
        shadow, extra = self._shadow(head)
        # try to backfill jobs behind the head, in arrival order
        for job in list(self.queue[1:]):
            n = job.request.nr
            if n > self.cluster.free:
                continue
            ends_before_shadow = self.now + job.request.lr <= shadow
            if ends_before_shadow or n <= extra:
                self._start(job)
                if not ends_before_shadow:
                    # runs past the shadow: consumes the head's surplus
                    extra -= n
                # (a job ending before the shadow returns its processors
                # before the head starts — the surplus is unaffected)

    def _shadow(self, head: Job) -> tuple[float, int]:
        """Earliest time the head can start, and the processors left over then.

        Walk the running jobs in completion order, accumulating released
        processors until the head fits.  Returns ``(shadow_time, extra)``
        where ``extra`` is the number of processors that will still be
        free at the shadow time once the head starts.
        """
        assert self.cluster is not None
        free = self.cluster.free
        need = head.request.nr
        if need <= free:
            return self.now, free - need
        # plan on *estimated* completions — the scheduler only knows the
        # users' declared runtimes; early completions surprise it later
        for job in sorted(self.running, key=lambda j: j.estimated_end):  # type: ignore[arg-type,return-value]
            free += job.request.nr
            if free >= need:
                return job.estimated_end, free - need  # type: ignore[return-value]
        raise RuntimeError(
            f"head job {head.rid} needs {need} > {self.n_servers} processors"
        )  # pragma: no cover - submit() rejects oversized jobs
