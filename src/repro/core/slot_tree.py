"""The 2-dimensional availability tree of Section 4.1 — array-backed.

One :class:`TwoDimTree` exists per time slot; it stores every idle period
that overlaps the slot.  The *primary* dimension is a leaf-oriented,
weight-balanced binary search tree keyed by idle-period **starting time**
(ascending; the paper stores descending — a mirror image with identical
semantics).  Every node additionally carries the *secondary* dimension: an
index over the same set of idle periods ordered by **ending time**.

The paper describes the secondary structures as binary search trees.  Here
each one is an *implicit* balanced BST backed by a sorted array: the
Phase-2 median-split search is literally a binary search (``bisect``),
"subtree size" is index arithmetic, and single-element updates are C-speed
``memmove`` — strictly faster than pointer-chasing for every set that fits
in one slot tree (at most the number of servers, ``N``).  The primary tree
uses partial rebuilding (the canonical dynamic range-tree construction) so
the paper's bounds hold: Phase 1 visits ``O(log N)`` nodes and marks
``O(log N)`` subtrees, Phase 2 costs ``O((log N)^2)``, and updates are
amortized ``O(log^2 N)`` tree work plus the array shifts.

Since the array-backed rewrite, the tree itself lives in
:class:`repro.core._kernel.TreeKernel` as struct-of-arrays storage — node
ids indexing parallel lists — which mypyc compiles to a C extension when
the package is built with ``REPRO_MYPYC=1`` (see ``docs/algorithm.md``).
This module is the thin uncompiled boundary around it: it owns the
uid → :class:`~repro.core.types.IdlePeriod` map (the kernel speaks
``(st, et, uid)`` primitives only), flushes the kernel's per-operation
accounting into the shared :class:`~repro.core.opcount.OpCounter`, and —
because it stays pure python — remains monkeypatchable by the differ's
bug injectors and the audit engine's mutation wrappers.

Backend selection happens once, at import:

* normally ``repro.core._kernel`` is imported the usual way, resolving to
  the compiled extension when one was built and the pure-python source
  otherwise;
* ``REPRO_PURE_CORE=1`` in the environment forces the pure-python source
  to be loaded even when the compiled extension exists — the
  checksum-gated fallback (CI asserts both backends produce bit-identical
  outcome checksums) and the escape hatch ``repro profile`` uses, since
  compiled frames are invisible to cProfile.

:func:`backend_info` reports which backend this process actually runs.

The node-backed implementation this replaced is preserved verbatim as
:mod:`repro.core.slot_tree_nodes`; the hypothesis equivalence suite keeps
the two in lock-step.

Invariants (exercised by ``validate()`` and the property tests):

* leaves appear in ascending ``(st, uid)`` order;
* every internal node's key equals or exceeds every key in its left
  subtree and is strictly below every key in its right subtree;
* every node's secondary index holds exactly the ``(et, uid)`` keys of
  the leaves below it, in ascending order (the periods themselves are
  resolved through a per-tree uid map);
* every internal node is α-weight-balanced (see ``ALPHA``).
"""

from __future__ import annotations

import importlib.util
import math
import os
import sys
from types import ModuleType
from typing import Any, Iterator

from .opcount import NULL_COUNTER, OpCounter
from .types import IdlePeriod

__all__ = ["TwoDimTree", "ALPHA", "backend_info"]


def _pure_kernel_module() -> ModuleType:
    """Load ``_kernel.py`` from source, bypassing any compiled extension.

    Registered under its own name (``repro.core._kernel_pure``) so the
    compiled module — if present — keeps its identity for anything that
    imported it directly.
    """
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_kernel.py")
    spec = importlib.util.spec_from_file_location("repro.core._kernel_pure", path)
    if spec is None or spec.loader is None:  # pragma: no cover - broken install
        raise ImportError(f"cannot load pure-python kernel from {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules["repro.core._kernel_pure"] = module
    spec.loader.exec_module(module)
    return module


#: True when ``REPRO_PURE_CORE`` demands the pure-python kernel.
_FORCE_PURE: bool = os.environ.get("REPRO_PURE_CORE", "").strip().lower() not in (
    "",
    "0",
    "off",
    "false",
    "no",
)

from . import _kernel as _kernel_mod  # noqa: E402 - needs _FORCE_PURE first

_impl: ModuleType = (
    _pure_kernel_module() if _FORCE_PURE and _kernel_mod.IS_COMPILED else _kernel_mod
)

_TreeKernel: Any = _impl.TreeKernel
_NIL: int = _impl.NIL

#: Weight-balance factor — re-exported from the kernel; see there.
ALPHA: float = _impl.ALPHA


def backend_info() -> dict[str, object]:
    """Which slot-tree kernel this process runs.

    ``backend`` is ``"compiled"`` (mypyc extension) or ``"pure-python"``;
    ``forced_pure`` records whether ``REPRO_PURE_CORE`` overrode a
    compiled build.  Benchmarks embed this next to their checksums so a
    recorded number always names the backend that produced it.
    """
    compiled = bool(_impl.IS_COMPILED)
    return {
        "backend": "compiled" if compiled else "pure-python",
        "compiled": compiled,
        "forced_pure": _FORCE_PURE,
        "module": str(getattr(_impl, "__file__", "<unknown>")),
    }


class TwoDimTree:
    """The per-slot 2-dimensional tree over idle periods.

    Parameters
    ----------
    counter:
        An :class:`~repro.core.opcount.OpCounter` receiving elementary
        operation counts; defaults to a do-nothing counter.
    """

    __slots__ = ("_kernel", "_counter", "_by_uid")

    def __init__(self, counter: OpCounter = NULL_COUNTER) -> None:
        self._kernel: Any = _TreeKernel()
        self._counter = counter
        #: uid -> period for everything stored; resolves secondary keys
        self._by_uid: dict[int, IdlePeriod] = {}

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return int(self._kernel.count)

    def __contains__(self, period: IdlePeriod) -> bool:
        node, visits = self._kernel.find(period.st, period.uid)
        if visits:
            self._counter.add("node_visit", visits)
        return bool(node != _NIL)

    def periods(self) -> Iterator[IdlePeriod]:
        """All stored idle periods in ascending start-time order."""
        by_uid = self._by_uid
        return (by_uid[uid] for uid in self._kernel.uids_inorder())

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def insert(self, period: IdlePeriod) -> None:
        """Insert an idle period (O(log^2 N) amortized)."""
        k = self._kernel
        self._by_uid[period.uid] = period
        k.insert(period.st, period.et, period.uid)
        # batched accounting: totals are identical to counting each
        # elementary step as it happens, at a fraction of the call overhead
        self._counter.add_insert(k.last_visits, k.last_probes)
        if k.last_rebuilt:
            self._counter.add("rebuild", k.last_rebuilt)

    def remove(self, period: IdlePeriod) -> None:
        """Remove an idle period; raises ``KeyError`` if absent."""
        k = self._kernel
        if not k.remove(period.st, period.et, period.uid):
            self._counter.add_remove(k.last_visits, 0)
            raise KeyError(f"idle period uid={period.uid} not in tree")
        del self._by_uid[period.uid]
        self._counter.add_remove(k.last_visits, k.last_probes)
        if k.last_rebuilt:
            self._counter.add("rebuild", k.last_rebuilt)

    def apply_batch(self, removals: list[IdlePeriod], inserts: list[IdlePeriod]) -> None:
        """Apply one allocation's removals and insertions in a single pass.

        The batch-reserve fast path: every tree update one request makes
        against this slot is fused into one kernel call with *deferred*
        rebalancing — each operation's descent/walk runs as usual, but
        partial rebuilds are postponed to a single flush that rebuilds
        only the nodes still unbalanced under the final sizes (typically
        one rebuild per batch instead of one per ~3 operations).  Since
        Phase-2 selection is a pure function of stored periods, the
        different intermediate tree shapes change no outcome.  Raises
        ``KeyError`` when a removal is absent, like :meth:`remove`.
        """
        k = self._kernel
        ok = k.apply_batch(
            [(p.st, p.et, p.uid) for p in removals],
            [(p.st, p.et, p.uid) for p in inserts],
        )
        if not ok:
            self._counter.add_remove(k.last_visits, 0)
            raise KeyError("batch removal of an idle period not in tree")
        by_uid = self._by_uid
        for p in removals:
            del by_uid[p.uid]
        for p in inserts:
            by_uid[p.uid] = p
        self._counter.add_batch(len(inserts), len(removals), k.last_visits, k.last_probes)
        if k.last_rebuilt:
            self._counter.add("rebuild", k.last_rebuilt)

    def bulk_load(self, periods: list[IdlePeriod]) -> None:
        """Replace the tree contents with ``periods`` in O(k log k).

        Used when a slot tree is (re-)initialized — at calendar start-up
        and at each horizon rollover — where item-by-item insertion would
        waste an O(log N) factor.
        """
        self._by_uid = {p.uid: p for p in periods}
        self._kernel.bulk_load([(p.st, p.et, p.uid) for p in periods])
        if periods:
            self._counter.add("rebuild", len(periods))

    # ------------------------------------------------------------------
    # searches (the two phases of Section 4.2)
    # ------------------------------------------------------------------

    def phase1(self, sr: float) -> tuple[int, list[int]]:
        """Locate every *candidate* idle period (``st <= sr``).

        Returns the candidate count and the marked subtree roots (kernel
        node ids) in marking order (ascending start ranges).  Phase 2
        merges their secondary indexes into one canonical feasibility
        order, so the partition produced here is an implementation detail
        — only the union of the marked leaves matters.  Marks are only
        valid until the next update of this tree.
        """
        k = self._kernel
        count, marks = k.phase1(sr)
        self._counter.add_search(k.last_visits, len(marks), 0, 0)
        return int(count), list(marks)

    def phase2(
        self, marks: list[int], er: float, need: int | float, partial: bool = False
    ) -> list[IdlePeriod] | None:
        """Among the marked candidates, find ``need`` periods with ``et >= er``.

        Selection is *canonical*: the globally earliest-ending feasible
        periods win, ties broken by uid (a k-way merge over the marked
        subtrees' secondary indexes).  The paper instead walks the marked
        subtrees in reverse marking order and takes each subtree's
        earliest-ending members — but that partition is an artifact of
        the tree's internal shape, i.e. of operation *history* rather
        than content, so two trees holding identical periods can pick
        different (equally feasible) subsets.  The canonical merge makes
        the choice a pure function of the stored periods: a calendar
        rebuilt from a snapshot selects byte-identical servers, which is
        the reservation service's restart guarantee.  The merge itself is
        :func:`~repro.core.merge.merge_earliest` — the same function the
        sharded coordinator runs over per-shard candidate prefixes, which
        is what makes sharded selection bit-identical to this one.  The
        bound is unchanged — ``O(log N)`` bisects of ``O(log N)`` marks
        plus ``O(need · log log N)`` heap pops.

        Returns the chosen periods, or ``None`` when fewer than ``need``
        are feasible — unless ``partial`` is set, in which case whatever
        was found is returned (the calendar tops the result up from its
        tail index).  ``need`` may be ``math.inf`` to retrieve every
        feasible period (range searches), in ascending ``(et, uid)``
        order.
        """
        k = self._kernel
        need_int = -1 if need == math.inf else int(need)
        chosen = k.phase2(marks, er, need_int, partial)
        if chosen is None:
            self._counter.add_search(0, 0, k.last_probes, 0)
            return None
        by_uid = self._by_uid
        out = [by_uid[key[1]] for key in chosen]
        self._counter.add_search(0, 0, k.last_probes, len(out))
        return out

    def find_feasible(self, sr: float, er: float, nr: int) -> list[IdlePeriod] | None:
        """Run both phases for a request occupying ``[sr, er)`` on ``nr`` servers."""
        count, marks = self.phase1(sr)
        if count < nr:
            return None
        return self.phase2(marks, er, nr)

    def count_candidates(self, sr: float) -> int:
        """Number of stored periods with ``st <= sr`` (Phase 1 only)."""
        return self.phase1(sr)[0]

    def range_search(self, ta: float, tb: float) -> list[IdlePeriod]:
        """Every stored idle period covering the whole window ``[ta, tb)``."""
        _, marks = self.phase1(ta)
        found = self.phase2(marks, tb, math.inf)
        return found if found is not None else []

    # ------------------------------------------------------------------
    # verification (test support)
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check every structural invariant; raises ``AssertionError`` on violation.

        Delegates to :func:`repro.analysis.audit.audit_tree` — the full
        machine-checked invariant list (size fields, split keys, leaf and
        secondary ordering, uid-map bijection, primary/secondary leaf-set
        equality, parent links, weight balance) lives there, with one
        stable check ID per invariant.  The raised
        :class:`~repro.analysis.audit.AuditError` is an
        ``AssertionError`` subclass, preserving this method's contract.
        """
        from ..analysis.audit import AuditError, audit_tree

        findings = audit_tree(self)
        if findings:
            raise AuditError(findings)
