"""The 2-dimensional availability tree of Section 4.1.

One :class:`TwoDimTree` exists per time slot; it stores every idle period
that overlaps the slot.  The *primary* dimension is a leaf-oriented,
weight-balanced binary search tree keyed by idle-period **starting time**
(ascending; the paper stores descending — a mirror image with identical
semantics).  Every node additionally carries the *secondary* dimension: an
index over the same set of idle periods ordered by **ending time**.

The paper describes the secondary structures as binary search trees.  Here
each one is an *implicit* balanced BST backed by a sorted array: the
Phase-2 median-split search is literally a binary search (``bisect``),
"subtree size" is index arithmetic, and single-element updates are C-speed
``memmove`` — strictly faster than pointer-chasing for every set that fits
in one slot tree (at most the number of servers, ``N``).  The primary tree
uses partial rebuilding (the canonical dynamic range-tree construction) so
the paper's bounds hold: Phase 1 visits ``O(log N)`` nodes and marks
``O(log N)`` subtrees, Phase 2 costs ``O((log N)^2)``, and updates are
amortized ``O(log^2 N)`` tree work plus the array shifts.

Invariants (exercised by ``validate()`` and the property tests):

* leaves appear in ascending ``(st, uid)`` order;
* every internal node's key equals or exceeds every key in its left
  subtree and is strictly below every key in its right subtree;
* every node's secondary index holds exactly the idle periods of the
  leaves below it, sorted by ``(et, uid)``;
* every internal node is α-weight-balanced (see ``ALPHA``).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterator

from .opcount import NULL_COUNTER, OpCounter
from .types import IdlePeriod

__all__ = ["TwoDimTree", "ALPHA"]

#: Weight-balance factor: a node with ``size(child) > ALPHA * size(node)``
#: triggers a partial rebuild of the highest unbalanced subtree.  0.8
#: trades slightly deeper trees (depth <= log_{1.25} n ~= 3.1 log2 n) for
#: far fewer rebuilds under the monotone insertion patterns the calendar
#: produces (remnants carry ever-increasing uids).
ALPHA = 0.8

#: Sentinel uid used to turn a scalar start-time bound into a search key
#: that compares *after* every real ``(st, uid)`` key with the same st.
_UID_HIGH = math.inf


class _Node:
    """A primary-tree node; leaves carry an idle period, internal nodes a split key.

    ``sec_keys``/``sec_periods`` are the secondary dimension: parallel
    arrays of ``(et, uid)`` keys and their idle periods, ascending.
    """

    __slots__ = ("key", "size", "left", "right", "parent", "period", "sec_keys", "sec_periods")

    def __init__(self) -> None:
        self.key: tuple[float, float] = (0.0, 0.0)
        self.size = 1
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.parent: _Node | None = None
        self.period: IdlePeriod | None = None
        self.sec_keys: list[tuple[float, int]] = []
        self.sec_periods: list[IdlePeriod] = []

    @property
    def is_leaf(self) -> bool:
        return self.period is not None

    @staticmethod
    def leaf(period: IdlePeriod) -> "_Node":
        node = _Node()
        node.key = (period.st, period.uid)
        node.period = period
        node.sec_keys = [(period.et, period.uid)]
        node.sec_periods = [period]
        return node


def _collect(node: _Node) -> tuple[list[_Node], list[_Node]]:
    """Leaves below ``node`` in ascending key order, plus the internal
    nodes of the subtree (recycled by rebuilds to avoid allocation)."""
    leaves: list[_Node] = []
    internals: list[_Node] = []
    stack = [node]
    while stack:
        cur = stack.pop()
        if cur.period is not None:
            leaves.append(cur)
        else:
            internals.append(cur)
            # push right first so left is processed first
            stack.append(cur.right)  # type: ignore[arg-type]
            stack.append(cur.left)  # type: ignore[arg-type]
    return leaves, internals


class TwoDimTree:
    """The per-slot 2-dimensional tree over idle periods.

    Parameters
    ----------
    counter:
        An :class:`~repro.core.opcount.OpCounter` receiving elementary
        operation counts; defaults to a do-nothing counter.
    """

    __slots__ = ("_root", "_counter")

    def __init__(self, counter: OpCounter = NULL_COUNTER) -> None:
        self._root: _Node | None = None
        self._counter = counter

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._root.size if self._root is not None else 0

    def __contains__(self, period: IdlePeriod) -> bool:
        leaf = self._find_leaf(period)
        return leaf is not None

    def periods(self) -> Iterator[IdlePeriod]:
        """All stored idle periods in ascending start-time order."""
        if self._root is None:
            return iter(())
        return (leaf.period for leaf in _collect(self._root)[0])  # type: ignore[misc]

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def insert(self, period: IdlePeriod) -> None:
        """Insert an idle period (O(log^2 N) amortized)."""
        self._counter.add("insert")
        new_leaf = _Node.leaf(period)
        if self._root is None:
            self._root = new_leaf
            return
        # descend to the leaf position
        node = self._root
        path: list[_Node] = []
        while not node.is_leaf:
            self._counter.add("node_visit")
            path.append(node)
            node = node.left if new_leaf.key <= node.key else node.right  # type: ignore[assignment]
        # split the leaf into an internal node with two leaf children
        old_leaf = node
        internal = _Node()
        if new_leaf.key < old_leaf.key:
            internal.left, internal.right = new_leaf, old_leaf
            internal.key = new_leaf.key
        else:
            internal.left, internal.right = old_leaf, new_leaf
            internal.key = old_leaf.key
        internal.size = 2
        pair = sorted(
            [(old_leaf.sec_keys[0], old_leaf.period), (new_leaf.sec_keys[0], new_leaf.period)]
        )
        internal.sec_keys = [k for k, _ in pair]
        internal.sec_periods = [p for _, p in pair]  # type: ignore[misc]
        new_leaf.parent = internal
        old_parent = old_leaf.parent
        old_leaf.parent = internal
        internal.parent = old_parent
        if old_parent is None:
            self._root = internal
        elif old_parent.left is old_leaf:
            old_parent.left = internal
        else:
            old_parent.right = internal
        # propagate size and secondary updates to ancestors
        sec_key = (period.et, period.uid)
        for anc in path:
            anc.size += 1
            self._sec_insert(anc, sec_key, period)
        self._rebalance(path)

    def bulk_load(self, periods: list[IdlePeriod]) -> None:
        """Replace the tree contents with ``periods`` in O(k log k).

        Used when a slot tree is (re-)initialized — at calendar start-up
        and at each horizon rollover — where item-by-item insertion would
        waste an O(log N) factor.
        """
        if not periods:
            self._root = None
            return
        leaves = [_Node.leaf(p) for p in sorted(periods, key=lambda p: (p.st, p.uid))]
        self._counter.add("rebuild", len(leaves))
        self._root = self._build(leaves, 0, len(leaves), [])
        self._root.parent = None

    def remove(self, period: IdlePeriod) -> None:
        """Remove an idle period; raises ``KeyError`` if absent."""
        self._counter.add("remove")
        leaf = self._find_leaf(period)
        if leaf is None:
            raise KeyError(f"idle period uid={period.uid} not in tree")
        parent = leaf.parent
        if parent is None:
            self._root = None
            return
        sibling = parent.right if parent.left is leaf else parent.left
        assert sibling is not None
        grand = parent.parent
        sibling.parent = grand
        if grand is None:
            self._root = sibling
        elif grand.left is parent:
            grand.left = sibling
        else:
            grand.right = sibling
        # propagate size and secondary removals to remaining ancestors
        sec_key = (period.et, period.uid)
        path: list[_Node] = []
        anc = grand
        while anc is not None:
            anc.size -= 1
            self._sec_remove(anc, sec_key)
            path.append(anc)
            anc = anc.parent
        path.reverse()  # root first, as _rebalance expects
        self._rebalance(path)

    # ------------------------------------------------------------------
    # searches (the two phases of Section 4.2)
    # ------------------------------------------------------------------

    def phase1(self, sr: float) -> tuple[int, list[_Node]]:
        """Locate every *candidate* idle period (``st <= sr``).

        Returns the candidate count and the marked subtree roots in
        marking order (ascending start ranges).  Searching them in
        *reverse* order — as Phase 2 does — considers the latest-starting
        candidates first, exactly as in the paper.
        """
        bound = (sr, _UID_HIGH)
        count = 0
        marks: list[_Node] = []
        node = self._root
        while node is not None:
            self._counter.add("node_visit")
            if node.is_leaf:
                if node.key <= bound:
                    marks.append(node)
                    count += node.size
                    self._counter.add("mark")
                break
            if node.key <= bound:
                # every leaf in the left subtree starts at or before sr
                marks.append(node.left)  # type: ignore[arg-type]
                count += node.left.size  # type: ignore[union-attr]
                self._counter.add("mark")
                node = node.right
            else:
                node = node.left
        return count, marks

    def phase2(
        self, marks: list[_Node], er: float, need: int | float, partial: bool = False
    ) -> list[IdlePeriod] | None:
        """Among the marked candidates, find ``need`` periods with ``et >= er``.

        Marked subtrees are inspected in reverse marking order; within a
        subtree the earliest-ending feasible periods are preferred (the
        paper's in-order traversal of the secondary tree).  Returns the
        chosen periods, or ``None`` when fewer than ``need`` are feasible —
        unless ``partial`` is set, in which case whatever was found is
        returned (the calendar tops the result up from its tail index).
        ``need`` may be ``math.inf`` to retrieve every feasible period
        (range searches).
        """
        bound = (er, -1)
        chosen: list[IdlePeriod] = []
        for node in reversed(marks):
            keys = node.sec_keys
            idx = bisect_left(keys, bound)
            self._counter.add("secondary_probe", max(1, (len(keys)).bit_length()))
            avail = len(keys) - idx
            if avail <= 0:
                continue
            take = avail if need == math.inf else min(avail, int(need) - len(chosen))
            chosen.extend(node.sec_periods[idx : idx + take])
            self._counter.add("retrieve", take)
            if need != math.inf and len(chosen) >= need:
                return chosen
        if need == math.inf or partial:
            return chosen
        return None

    def find_feasible(self, sr: float, er: float, nr: int) -> list[IdlePeriod] | None:
        """Run both phases for a request occupying ``[sr, er)`` on ``nr`` servers."""
        count, marks = self.phase1(sr)
        if count < nr:
            return None
        return self.phase2(marks, er, nr)

    def count_candidates(self, sr: float) -> int:
        """Number of stored periods with ``st <= sr`` (Phase 1 only)."""
        return self.phase1(sr)[0]

    def range_search(self, ta: float, tb: float) -> list[IdlePeriod]:
        """Every stored idle period covering the whole window ``[ta, tb)``."""
        _, marks = self.phase1(ta)
        found = self.phase2(marks, tb, math.inf)
        return found if found is not None else []

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _find_leaf(self, period: IdlePeriod) -> _Node | None:
        key = (period.st, period.uid)
        node = self._root
        while node is not None and not node.is_leaf:
            self._counter.add("node_visit")
            node = node.left if key <= node.key else node.right
        if node is not None and node.period is not None and node.period.uid == period.uid:
            return node
        return None

    def _sec_insert(self, node: _Node, sec_key: tuple[float, int], period: IdlePeriod) -> None:
        idx = bisect_left(node.sec_keys, sec_key)
        node.sec_keys.insert(idx, sec_key)
        node.sec_periods.insert(idx, period)
        self._counter.add("secondary_probe", max(1, len(node.sec_keys).bit_length()))

    def _sec_remove(self, node: _Node, sec_key: tuple[float, int]) -> None:
        idx = bisect_left(node.sec_keys, sec_key)
        assert idx < len(node.sec_keys) and node.sec_keys[idx] == sec_key
        node.sec_keys.pop(idx)
        node.sec_periods.pop(idx)
        self._counter.add("secondary_probe", max(1, (len(node.sec_keys) + 1).bit_length()))

    def _rebalance(self, path_root_first: list[_Node]) -> None:
        """Rebuild the highest α-unbalanced node on the update path, if any."""
        for node in path_root_first:
            if node.is_leaf:
                continue
            limit = ALPHA * node.size
            if node.left.size > limit or node.right.size > limit:  # type: ignore[union-attr]
                self._rebuild(node)
                return

    def _rebuild(self, node: _Node) -> None:
        # capture the attachment point first: `node` itself enters the
        # recycling pool and may be rewired while the subtree is rebuilt
        parent = node.parent
        was_left = parent is not None and parent.left is node
        leaves, pool = _collect(node)
        self._counter.add("rebuild", len(leaves))
        fresh = self._build(leaves, 0, len(leaves), pool)
        fresh.parent = parent
        if parent is None:
            self._root = fresh
        elif was_left:
            parent.left = fresh
        else:
            parent.right = fresh

    def _build(self, leaves: list[_Node], lo: int, hi: int, pool: list[_Node]) -> _Node:
        """Build a perfectly balanced subtree over ``leaves[lo:hi]`` (already
        ordered), recycling internal nodes from ``pool`` when available."""
        if hi - lo == 1:
            leaf = leaves[lo]
            leaf.left = leaf.right = None
            return leaf
        mid = (lo + hi + 1) // 2  # left gets the extra leaf; key = max of left
        node = pool.pop() if pool else _Node()
        node.period = None
        left = self._build(leaves, lo, mid, pool)
        right = self._build(leaves, mid, hi, pool)
        node.left, node.right = left, right
        left.parent = right.parent = node
        node.key = leaves[mid - 1].key
        node.size = hi - lo
        # merge the children's secondary arrays; the concatenation is two
        # sorted runs, which timsort merges in linear time (keys are
        # unique, so the tie-breaking period field is never compared)
        pairs = sorted(zip(left.sec_keys + right.sec_keys, left.sec_periods + right.sec_periods))
        node.sec_keys = [k for k, _ in pairs]
        node.sec_periods = [p for _, p in pairs]
        return node

    # ------------------------------------------------------------------
    # verification (test support)
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check every structural invariant; raises ``AssertionError`` on violation."""
        if self._root is None:
            return
        assert self._root.parent is None

        def check(node: _Node) -> tuple[int, tuple, tuple, list]:
            """Returns (size, min_key, max_key, sorted sec keys) of subtree."""
            if node.is_leaf:
                assert node.size == 1
                assert node.key == (node.period.st, node.period.uid)  # type: ignore[union-attr]
                assert node.sec_keys == [(node.period.et, node.period.uid)]  # type: ignore[union-attr]
                return 1, node.key, node.key, list(node.sec_keys)
            assert node.left is not None and node.right is not None
            assert node.left.parent is node and node.right.parent is node
            ls, lmin, lmax, lsec = check(node.left)
            rs, rmin, rmax, rsec = check(node.right)
            assert node.size == ls + rs, "size mismatch"
            assert lmax <= node.key < rmin, "split-key ordering violated"
            limit = ALPHA * node.size
            assert ls <= limit and rs <= limit, "weight balance violated"
            merged = sorted(lsec + rsec)
            assert node.sec_keys == merged, "secondary index out of sync"
            assert [(p.et, p.uid) for p in node.sec_periods] == node.sec_keys
            return node.size, lmin, rmax, merged

        check(self._root)
