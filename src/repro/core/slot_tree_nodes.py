"""The node-backed reference form of the Section 4.1 availability tree.

This module preserves the original heap-allocated ``_Node`` implementation
of :class:`TwoDimTree` after the production tree moved to array-backed
storage (:mod:`repro.core.slot_tree` wrapping
:mod:`repro.core._kernel`).  It exists as the *executable specification*:
the hypothesis suite in ``tests/property/test_array_equivalence.py`` runs
identical operation streams through both implementations and requires
byte-identical answers from insert/remove/phase1/phase2/range_search/
bulk_load.  It is not used on any production path and is deliberately
left uncompiled.

One :class:`TwoDimTree` exists per time slot; it stores every idle period
that overlaps the slot.  The *primary* dimension is a leaf-oriented,
weight-balanced binary search tree keyed by idle-period **starting time**
(ascending; the paper stores descending — a mirror image with identical
semantics).  Every node additionally carries the *secondary* dimension: an
index over the same set of idle periods ordered by **ending time**.

The paper describes the secondary structures as binary search trees.  Here
each one is an *implicit* balanced BST backed by a sorted array: the
Phase-2 median-split search is literally a binary search (``bisect``),
"subtree size" is index arithmetic, and single-element updates are C-speed
``memmove`` — strictly faster than pointer-chasing for every set that fits
in one slot tree (at most the number of servers, ``N``).  The primary tree
uses partial rebuilding (the canonical dynamic range-tree construction) so
the paper's bounds hold: Phase 1 visits ``O(log N)`` nodes and marks
``O(log N)`` subtrees, Phase 2 costs ``O((log N)^2)``, and updates are
amortized ``O(log^2 N)`` tree work plus the array shifts.

Invariants (exercised by ``validate()`` and the property tests):

* leaves appear in ascending ``(st, uid)`` order;
* every internal node's key equals or exceeds every key in its left
  subtree and is strictly below every key in its right subtree;
* every node's secondary index holds exactly the ``(et, uid)`` keys of
  the leaves below it, in ascending order (the periods themselves are
  resolved through a per-tree uid map);
* every internal node is α-weight-balanced (see ``ALPHA``).
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort_left
from typing import Iterator

from .merge import merge_earliest
from .opcount import NULL_COUNTER, OpCounter
from .types import IdlePeriod

__all__ = ["TwoDimTree", "ALPHA"]

#: Weight-balance factor: a node with ``size(child) > ALPHA * size(node)``
#: triggers a partial rebuild of the highest unbalanced subtree.  0.8
#: trades slightly deeper trees (depth <= log_{1.25} n ~= 3.1 log2 n) for
#: far fewer rebuilds under the monotone insertion patterns the calendar
#: produces (remnants carry ever-increasing uids).
ALPHA = 0.8

#: Sentinel uid used to turn a scalar start-time bound into a search key
#: that compares *after* every real ``(st, uid)`` key with the same st.
_UID_HIGH = math.inf


class _Node:
    """A primary-tree node; leaves carry an idle period, internal nodes a split key.

    ``sec_keys`` is the secondary dimension: the ``(et, uid)`` keys of
    every idle period below the node, ascending.  The periods themselves
    are resolved through the owning tree's uid map — storing keys only
    halves the per-ancestor update work and the rebuild merge volume.
    """

    __slots__ = ("key", "size", "left", "right", "parent", "period", "sec_keys")

    def __init__(self) -> None:
        self.key: tuple[float, float] = (0.0, 0.0)
        self.size = 1
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.parent: _Node | None = None
        self.period: IdlePeriod | None = None
        self.sec_keys: list[tuple[float, int]] = []

    @property
    def is_leaf(self) -> bool:
        return self.period is not None

    @staticmethod
    def leaf(period: IdlePeriod) -> "_Node":
        node = _Node()
        node.key = (period.st, period.uid)
        node.period = period
        node.sec_keys = [(period.et, period.uid)]
        return node


def _collect(node: _Node) -> tuple[list[_Node], list[_Node]]:
    """Leaves below ``node`` in ascending key order, plus the internal
    nodes of the subtree (recycled by rebuilds to avoid allocation)."""
    leaves: list[_Node] = []
    internals: list[_Node] = []
    leaves_append = leaves.append
    internals_append = internals.append
    stack = [node]
    stack_append = stack.append
    stack_pop = stack.pop
    while stack:
        cur = stack_pop()
        if cur.period is not None:
            leaves_append(cur)
        else:
            internals_append(cur)
            # push right first so left is processed first
            stack_append(cur.right)  # type: ignore[arg-type]
            stack_append(cur.left)  # type: ignore[arg-type]
    return leaves, internals


class TwoDimTree:
    """The per-slot 2-dimensional tree over idle periods.

    Parameters
    ----------
    counter:
        An :class:`~repro.core.opcount.OpCounter` receiving elementary
        operation counts; defaults to a do-nothing counter.
    """

    __slots__ = ("_root", "_counter", "_by_uid")

    def __init__(self, counter: OpCounter = NULL_COUNTER) -> None:
        self._root: _Node | None = None
        self._counter = counter
        #: uid -> period for everything stored; resolves secondary keys
        self._by_uid: dict[int, IdlePeriod] = {}

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._root.size if self._root is not None else 0

    def __contains__(self, period: IdlePeriod) -> bool:
        leaf, visits = self._find_leaf(period)
        if visits:
            self._counter.add("node_visit", visits)
        return leaf is not None

    def periods(self) -> Iterator[IdlePeriod]:
        """All stored idle periods in ascending start-time order."""
        if self._root is None:
            return iter(())
        return (leaf.period for leaf in _collect(self._root)[0])  # type: ignore[misc]

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def insert(self, period: IdlePeriod) -> None:
        """Insert an idle period (O(log^2 N) amortized)."""
        new_leaf = _Node()
        key = (period.st, period.uid)
        sec_key = (period.et, period.uid)
        new_leaf.key = key
        new_leaf.period = period
        new_leaf.sec_keys = [sec_key]
        self._by_uid[period.uid] = period
        if self._root is None:
            self._root = new_leaf
            self._counter.add_insert(0, 0)
            return
        # single fused descent: push the size increment and the secondary
        # insertion into every node passed, and spot the highest
        # α-unbalanced ancestor on the way down (the descent child's final
        # size is its current size + 1 — for the split leaf too, which
        # becomes an internal node of size 2 — so the post-update balance
        # test can run before the update completes)
        node = self._root
        visits = 0
        probes = 0
        unbal: _Node | None = None
        while node.period is None:
            visits += 1
            size = node.size + 1
            node.size = size
            insort_left(node.sec_keys, sec_key)
            # len(sec_keys) == subtree size on every node, so the probe
            # cost needs no len() call
            probes += size.bit_length()
            left = node.left
            child = left if key <= node.key else node.right
            if unbal is None:
                limit = ALPHA * size
                other = node.right if child is left else left
                if child.size + 1 > limit or other.size > limit:  # type: ignore[union-attr]
                    unbal = node
            node = child  # type: ignore[assignment]
        # split the leaf into an internal node with two leaf children
        old_leaf = node
        internal = _Node()
        if key < old_leaf.key:
            internal.left, internal.right = new_leaf, old_leaf
            internal.key = key
        else:
            internal.left, internal.right = old_leaf, new_leaf
            internal.key = old_leaf.key
        internal.size = 2
        old_sec = old_leaf.sec_keys[0]
        if sec_key < old_sec:
            internal.sec_keys = [sec_key, old_sec]
        else:
            internal.sec_keys = [old_sec, sec_key]
        new_leaf.parent = internal
        old_parent = old_leaf.parent
        old_leaf.parent = internal
        internal.parent = old_parent
        if old_parent is None:
            self._root = internal
        elif old_parent.left is old_leaf:
            old_parent.left = internal
        else:
            old_parent.right = internal
        # batched accounting: totals are identical to counting each
        # elementary step as it happens, at a fraction of the call overhead
        self._counter.add_insert(visits, probes)
        if unbal is not None:
            self._rebuild(unbal)

    def bulk_load(self, periods: list[IdlePeriod]) -> None:
        """Replace the tree contents with ``periods`` in O(k log k).

        Used when a slot tree is (re-)initialized — at calendar start-up
        and at each horizon rollover — where item-by-item insertion would
        waste an O(log N) factor.
        """
        self._by_uid = {p.uid: p for p in periods}
        if not periods:
            self._root = None
            return
        leaves = [_Node.leaf(p) for p in sorted(periods, key=lambda p: (p.st, p.uid))]
        self._counter.add("rebuild", len(leaves))
        self._root = self._build(leaves, 0, len(leaves), [])
        self._root.parent = None

    def remove(self, period: IdlePeriod) -> None:
        """Remove an idle period; raises ``KeyError`` if absent."""
        leaf, visits = self._find_leaf(period)
        if leaf is None:
            self._counter.add_remove(visits, 0)
            raise KeyError(f"idle period uid={period.uid} not in tree")
        del self._by_uid[period.uid]
        parent = leaf.parent
        if parent is None:
            self._root = None
            self._counter.add_remove(visits, 0)
            return
        sibling = parent.right if parent.left is leaf else parent.left
        assert sibling is not None
        grand = parent.parent
        sibling.parent = grand
        if grand is None:
            self._root = sibling
        elif grand.left is parent:
            grand.left = sibling
        else:
            grand.right = sibling
        # single fused upward walk: sizes below the current ancestor are
        # already final, so the balance test runs in the same pass; the
        # *last* unbalanced node seen is the highest one, as the inlined
        # _rebalance wants
        sec_key = (period.et, period.uid)
        probes = 0
        unbal: _Node | None = None
        anc = grand
        while anc is not None:
            size = anc.size - 1
            anc.size = size
            keys = anc.sec_keys
            idx = bisect_left(keys, sec_key)
            del keys[idx]
            probes += (size + 1).bit_length()
            limit = ALPHA * size
            if anc.left.size > limit or anc.right.size > limit:  # type: ignore[union-attr]
                unbal = anc
            anc = anc.parent
        self._counter.add_remove(visits, probes)
        if unbal is not None:
            self._rebuild(unbal)

    # ------------------------------------------------------------------
    # searches (the two phases of Section 4.2)
    # ------------------------------------------------------------------

    def phase1(self, sr: float) -> tuple[int, list[_Node]]:
        """Locate every *candidate* idle period (``st <= sr``).

        Returns the candidate count and the marked subtree roots in
        marking order (ascending start ranges).  Phase 2 merges their
        secondary indexes into one canonical feasibility order, so the
        partition produced here is an implementation detail — only the
        union of the marked leaves matters.
        """
        bound = (sr, _UID_HIGH)
        count = 0
        marks: list[_Node] = []
        marks_append = marks.append
        visits = 0
        node = self._root
        while node is not None:
            visits += 1
            if node.period is not None:
                if node.key <= bound:
                    marks_append(node)
                    count += node.size
                break
            if node.key <= bound:
                # every leaf in the left subtree starts at or before sr
                left = node.left
                marks_append(left)  # type: ignore[arg-type]
                count += left.size  # type: ignore[union-attr]
                node = node.right
            else:
                node = node.left
        self._counter.add_search(visits, len(marks), 0, 0)
        return count, marks

    def phase2(
        self, marks: list[_Node], er: float, need: int | float, partial: bool = False
    ) -> list[IdlePeriod] | None:
        """Among the marked candidates, find ``need`` periods with ``et >= er``.

        Selection is *canonical*: the globally earliest-ending feasible
        periods win, ties broken by uid (a k-way merge over the marked
        subtrees' secondary indexes).  The paper instead walks the marked
        subtrees in reverse marking order and takes each subtree's
        earliest-ending members — but that partition is an artifact of
        the tree's internal shape, i.e. of operation *history* rather
        than content, so two trees holding identical periods can pick
        different (equally feasible) subsets.  The canonical merge makes
        the choice a pure function of the stored periods: a calendar
        rebuilt from a snapshot selects byte-identical servers, which is
        the reservation service's restart guarantee.  The merge itself is
        :func:`~repro.core.merge.merge_earliest` — the same function the
        sharded coordinator runs over per-shard candidate prefixes, which
        is what makes sharded selection bit-identical to this one.  The
        bound is unchanged — ``O(log N)`` bisects of ``O(log N)`` marks
        plus ``O(need · log log N)`` heap pops.

        Returns the chosen periods, or ``None`` when fewer than ``need``
        are feasible — unless ``partial`` is set, in which case whatever
        was found is returned (the calendar tops the result up from its
        tail index).  ``need`` may be ``math.inf`` to retrieve every
        feasible period (range searches), in ascending ``(et, uid)``
        order.
        """
        bound = (er, -1)
        by_uid = self._by_uid
        probes = 0
        avail = 0
        runs: list[tuple[list[tuple[float, int]], int]] = []
        for node in marks:
            keys = node.sec_keys
            idx = bisect_left(keys, bound)
            probes += node.size.bit_length()
            if idx < len(keys):
                avail += len(keys) - idx
                runs.append((keys, idx))
        need_int = avail if need == math.inf else int(need)
        if avail < need_int and not partial:
            self._counter.add_search(0, 0, probes, 0)
            return None
        chosen = [by_uid[k[1]] for k in merge_earliest(runs, need_int)]
        self._counter.add_search(0, 0, probes, len(chosen))
        return chosen

    def find_feasible(self, sr: float, er: float, nr: int) -> list[IdlePeriod] | None:
        """Run both phases for a request occupying ``[sr, er)`` on ``nr`` servers."""
        count, marks = self.phase1(sr)
        if count < nr:
            return None
        return self.phase2(marks, er, nr)

    def count_candidates(self, sr: float) -> int:
        """Number of stored periods with ``st <= sr`` (Phase 1 only)."""
        return self.phase1(sr)[0]

    def range_search(self, ta: float, tb: float) -> list[IdlePeriod]:
        """Every stored idle period covering the whole window ``[ta, tb)``."""
        _, marks = self.phase1(ta)
        found = self.phase2(marks, tb, math.inf)
        return found if found is not None else []

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _find_leaf(self, period: IdlePeriod) -> tuple[_Node | None, int]:
        """Locate the leaf holding ``period``; returns ``(leaf, visits)``
        so the caller can fold the visit count into its own accounting."""
        key = (period.st, period.uid)
        visits = 0
        node = self._root
        while node is not None and node.period is None:
            visits += 1
            node = node.left if key <= node.key else node.right
        if node is not None and node.period.uid == period.uid:  # type: ignore[union-attr]
            return node, visits
        return None, visits

    def _rebuild(self, node: _Node) -> None:
        # capture the attachment point first: `node` itself enters the
        # recycling pool and may be rewired while the subtree is rebuilt
        parent = node.parent
        was_left = parent is not None and parent.left is node
        # the rebuilt root covers the same leaf set, so its merged
        # secondary array is the old root's, verbatim — _build never
        # mutates a recycled node's old array, it only rebinds
        top_keys = node.sec_keys
        leaves, pool = _collect(node)
        self._counter.add("rebuild", len(leaves))
        fresh = self._build(leaves, 0, len(leaves), pool, top_keys)
        fresh.parent = parent
        if parent is None:
            self._root = fresh
        elif was_left:
            parent.left = fresh
        else:
            parent.right = fresh

    def _build(
        self,
        leaves: list[_Node],
        lo: int,
        hi: int,
        pool: list[_Node],
        keys: list[tuple[float, int]] | None = None,
    ) -> _Node:
        """Build a perfectly balanced subtree over ``leaves[lo:hi]`` (already
        ordered), recycling internal nodes from ``pool`` when available.
        ``keys``, when given, is the node's known merged secondary array
        (the largest merge of a rebuild, skipped rather than recomputed)."""
        if hi - lo == 1:
            leaf = leaves[lo]
            leaf.left = leaf.right = None
            return leaf
        mid = (lo + hi + 1) // 2  # left gets the extra leaf; key = max of left
        node = pool.pop() if pool else _Node()
        node.period = None
        # expand single-leaf children inline: over half of all recursive
        # calls would otherwise be the trivial base case above
        if mid - lo == 1:
            left = leaves[lo]
            left.left = left.right = None
        else:
            left = self._build(leaves, lo, mid, pool)
        if hi - mid == 1:
            right = leaves[mid]
            right.left = right.right = None
        else:
            right = self._build(leaves, mid, hi, pool)
        node.left, node.right = left, right
        left.parent = right.parent = node
        node.key = leaves[mid - 1].key
        node.size = hi - lo
        if keys is not None:
            node.sec_keys = keys
            return node
        # merge the children's secondary arrays; when the runs do not
        # interleave (frequent: later-starting periods tend to end later)
        # a plain concatenation suffices, otherwise the concatenation is
        # two sorted runs, which timsort merges in linear time
        lk, rk = left.sec_keys, right.sec_keys
        if lk[-1] < rk[0]:
            node.sec_keys = lk + rk
        elif rk[-1] < lk[0]:
            node.sec_keys = rk + lk
        else:
            node.sec_keys = sorted(lk + rk)
        return node

    # ------------------------------------------------------------------
    # verification (test support)
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check every structural invariant; raises ``AssertionError`` on violation.

        The production (array-backed) tree delegates to the audit engine;
        this reference implementation keeps a self-contained inline check
        so it stays independent of the layout the audits read.
        """
        if self._root is None:
            assert not self._by_uid, "uid map retains entries of an empty tree"
            return
        assert self._root.parent is None

        def check(
            node: _Node,
        ) -> tuple[int, tuple[float, float], tuple[float, float], list[tuple[float, int]]]:
            """Returns (size, min_key, max_key, sorted sec keys) of the subtree."""
            if node.is_leaf:
                period = node.period
                assert period is not None and node.size == 1
                assert node.key == (period.st, period.uid)
                assert node.sec_keys == [(period.et, period.uid)]
                assert self._by_uid.get(period.uid) is period
                return 1, node.key, node.key, list(node.sec_keys)
            assert node.left is not None and node.right is not None
            assert node.left.parent is node and node.right.parent is node
            ls, lmin, lmax, lsec = check(node.left)
            rs, rmin, rmax, rsec = check(node.right)
            assert node.size == ls + rs, "size mismatch"
            assert lmax <= node.key < rmin, "split-key ordering violated"
            limit = ALPHA * node.size
            assert ls <= limit and rs <= limit, "weight balance violated"
            merged = sorted(lsec + rsec)
            assert node.sec_keys == merged, "secondary index out of sync"
            return node.size, lmin, rmax, merged

        check(self._root)
        assert len(self._by_uid) == self._root.size, "uid map out of sync"
