"""The paper's primary contribution: online resource co-allocation.

Public surface:

* :class:`~repro.core.types.Request`, :class:`~repro.core.types.IdlePeriod`,
  :class:`~repro.core.types.Reservation`, :class:`~repro.core.types.Allocation`,
  :class:`~repro.core.types.RangeQuery` — the vocabulary of Section 2;
* :class:`~repro.core.slot_tree.TwoDimTree` — the per-slot 2-D tree (§4.1);
* :class:`~repro.core.calendar.AvailabilityCalendar` — Q rolling slot trees;
* :class:`~repro.core.coalloc.OnlineCoAllocator` — the scheduling loop (§4.2);
* :class:`~repro.core.linear.LinearScanAllocator` — the naive baseline/oracle;
* :class:`~repro.core.opcount.OpCounter` — operation instrumentation (Fig 7b).
"""

from .calendar import AvailabilityCalendar
from .coalloc import OnlineCoAllocator
from .linear import LinearScanAllocator
from .opcount import NULL_COUNTER, OpCounter
from .slot_tree import TwoDimTree
from .types import INF, Allocation, IdlePeriod, RangeQuery, Request, Reservation

__all__ = [
    "INF",
    "Allocation",
    "AvailabilityCalendar",
    "IdlePeriod",
    "LinearScanAllocator",
    "NULL_COUNTER",
    "OnlineCoAllocator",
    "OpCounter",
    "RangeQuery",
    "Request",
    "Reservation",
    "TwoDimTree",
]
