"""Array-backed storage kernel for the 2-dimensional slot trees.

This module is the *flattened* form of the Section 4.1 availability tree:
instead of one heap-allocated ``_Node`` object per tree node, every node
is an integer id into struct-of-arrays storage — parallel lists holding
the split keys, subtree sizes, child/parent links and per-node secondary
``(et, uid)`` indexes.  The semantics are exactly those of the original
node-backed tree (kept as :mod:`repro.core.slot_tree_nodes` and proven
equivalent by the hypothesis suite in
``tests/property/test_array_equivalence.py``):

* a leaf-oriented, α-weight-balanced primary BST over ``(st, uid)``;
* per-node secondary sorted arrays over ``(et, uid)``;
* Phase 1 marks ``O(log N)`` subtree roots, Phase 2 k-way-merges their
  secondary suffixes into the canonical globally-earliest-ending order.

Why arrays?  Two reasons, one per build:

* **compiled** — the module is written in the mypyc-friendly subset
  (plain ints/floats/fixed tuples, no dataclasses, no monkeypatching,
  no dynamic attributes), so ``REPRO_MYPYC=1 pip install -e .`` compiles
  it (together with :mod:`repro.core.merge`) to a C extension where
  ``left[node]`` is a native array load instead of a dict-backed
  attribute lookup;
* **pure** — even interpreted, integer ids let update batches defer and
  coalesce partial rebuilds (see :meth:`TreeKernel.apply_batch`), which
  removes the dominant cost of the per-period update loop.

The kernel speaks *primitives only*: a period is ``(st, et, uid)``.
:class:`~repro.core.slot_tree.TwoDimTree` wraps it, owns the uid →
:class:`~repro.core.types.IdlePeriod` map, and flushes the kernel's
per-operation accounting fields into the shared
:class:`~repro.core.opcount.OpCounter`.

Batch updates (the batch-reserve fast path)
-------------------------------------------

``apply_batch(removals, insertions)`` applies every operation of one
allocation against this tree in a single pass with **deferred
rebalancing**: the per-operation walks update sizes and secondary arrays
exactly as the sequential operations would, but instead of partially
rebuilding at the first α-unbalanced ancestor of every single operation,
each walk only *records* the unbalanced nodes it passes.  After the last
operation the recorded candidates are re-checked against the final sizes
and only the ones still unbalanced are rebuilt — typically one rebuild
per batch instead of one per ~3 operations.  This is sound because a
node's subtree sizes change only via operations passing through it, so
the last operation through any node sees (and records against) its final
size; and it changes *nothing observable*: Phase-2 selection has been a
pure function of tree content since the canonical-merge change, so
different intermediate shapes cannot change scheduling outcomes.

When the batch is large relative to the tree, the kernel skips the
per-operation walks entirely and rebuilds the whole tree from the merged
leaf list (the bulk-load path) — asymptotically ``O(n)`` against the
batch's ``O(k · log² n)``.
"""

from __future__ import annotations

from bisect import bisect_left, insort_left

from .merge import merge_earliest

__all__ = ["ALPHA", "IS_COMPILED", "NIL", "TreeKernel", "UID_MAX"]

#: Weight-balance factor: a node with ``size(child) > ALPHA * size(node)``
#: triggers a partial rebuild of the highest unbalanced subtree.  0.8
#: trades slightly deeper trees (depth <= log_{1.25} n ~= 3.1 log2 n) for
#: far fewer rebuilds under the monotone insertion patterns the calendar
#: produces (remnants carry ever-increasing uids).
ALPHA = 0.8

#: Sentinel uid bound that compares after every real uid (uids come from
#: ``itertools.count``; 2**62 is unreachable).  Turns a scalar start-time
#: bound into a search key sorting after every real ``(st, uid)`` key
#: with the same st — the integer stand-in for the old ``math.inf``.
UID_MAX = 1 << 62

#: Null node id.
NIL = -1

#: True when this module is running as a mypyc-compiled extension; the
#: compiled module's ``__file__`` points at the shared object, the pure
#: fallback's at this source file.
IS_COMPILED: bool = not __file__.endswith(".py")

#: A batch whose operation count reaches ``count // _BULK_DIVISOR`` is
#: applied by rebuilding the whole tree from the merged leaf list rather
#: than by per-operation walks (each walk costs ~2·log²n array steps; a
#: full rebuild costs ~2n, so the crossover sits near n/8 for the tree
#: sizes one slot can hold).
_BULK_DIVISOR = 8


class TreeKernel:
    """Struct-of-arrays storage for one slot tree.

    Node ids index the parallel arrays; ``left[i] == NIL`` marks node
    ``i`` as a leaf.  Freed ids are recycled through ``free`` and their
    ``epoch`` bumped so deferred-rebuild candidates recorded against a
    node that has since been freed (and possibly reused) are recognised
    as stale.

    After every public operation the ``last_*`` fields hold that
    operation's elementary-operation counts for the wrapper to flush
    into the shared :class:`~repro.core.opcount.OpCounter` — one
    interpreted call per operation instead of one per category.
    """

    def __init__(self) -> None:
        self.root: int = NIL
        #: number of stored periods (leaves)
        self.count: int = 0
        #: split key; for leaves, the leaf's own ``(st, uid)``
        self.keys: list[tuple[float, int]] = []
        #: subtree sizes (leaves below, inclusive of self for leaves)
        self.size: list[int] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.parent: list[int] = []
        #: per-node secondary index: ``(et, uid)`` of every leaf below,
        #: ascending; for leaves, the single own key
        self.secs: list[list[tuple[float, int]]] = []
        #: recycled node ids
        self.free: list[int] = []
        #: bumped whenever a node id is freed; stale-candidate detection
        self.epoch: list[int] = []
        # per-operation accounting, read by the wrapper after each call
        self.last_visits: int = 0
        self.last_probes: int = 0
        self.last_marks: int = 0
        self.last_retrieved: int = 0
        self.last_rebuilt: int = 0

    # ------------------------------------------------------------------
    # node allocation
    # ------------------------------------------------------------------

    def _new_node(
        self,
        key: tuple[float, int],
        size: int,
        left: int,
        right: int,
        parent: int,
        sec: list[tuple[float, int]],
    ) -> int:
        free = self.free
        if free:
            i = free.pop()
            self.keys[i] = key
            self.size[i] = size
            self.left[i] = left
            self.right[i] = right
            self.parent[i] = parent
            self.secs[i] = sec
            return i
        i = len(self.keys)
        self.keys.append(key)
        self.size.append(size)
        self.left.append(left)
        self.right.append(right)
        self.parent.append(parent)
        self.secs.append(sec)
        self.epoch.append(0)
        return i

    def _free_node(self, i: int) -> None:
        self.epoch[i] += 1
        self.free.append(i)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def find(self, st: float, uid: int) -> tuple[int, int]:
        """Locate the leaf with key ``(st, uid)``.

        Returns ``(node, visits)``; ``node`` is ``NIL`` when absent, and
        ``visits`` counts descent steps either way so the caller can fold
        them into its accounting.
        """
        key = (st, uid)
        left = self.left
        keys = self.keys
        node = self.root
        visits = 0
        while node != NIL and left[node] != NIL:
            visits += 1
            node = left[node] if key <= keys[node] else self.right[node]
        if node != NIL and keys[node][1] == uid:
            return node, visits
        return NIL, visits

    def phase1(self, sr: float) -> tuple[int, list[int]]:
        """Mark every subtree of candidates (``st <= sr``); see the paper.

        Returns the candidate count and marked node ids in marking order.
        """
        bound = (sr, UID_MAX)
        count = 0
        marks: list[int] = []
        visits = 0
        left = self.left
        keys = self.keys
        size = self.size
        node = self.root
        while node != NIL:
            visits += 1
            lc = left[node]
            if lc == NIL:
                if keys[node] <= bound:
                    marks.append(node)
                    count += 1
                break
            if keys[node] <= bound:
                # every leaf in the left subtree starts at or before sr
                marks.append(lc)
                count += size[lc]
                node = self.right[node]
            else:
                node = lc
        self.last_visits = visits
        self.last_marks = len(marks)
        return count, marks

    def phase2(
        self, marks: list[int], er: float, need: int, partial: bool
    ) -> list[tuple[float, int]] | None:
        """Canonical Phase 2 over the marked subtrees.

        Returns the chosen ``(et, uid)`` keys — the globally
        earliest-ending feasible periods, uid tie-break — or ``None``
        when fewer than ``need`` are feasible (unless ``partial``).
        ``need < 0`` retrieves every feasible key (range searches).
        """
        bound = (er, -1)
        probes = 0
        avail = 0
        runs: list[tuple[list[tuple[float, int]], int]] = []
        secs = self.secs
        size = self.size
        for node in marks:
            ks = secs[node]
            idx = bisect_left(ks, bound)
            probes += size[node].bit_length()
            if idx < len(ks):
                avail += len(ks) - idx
                runs.append((ks, idx))
        if need < 0:
            need = avail
        if avail < need and not partial:
            self.last_probes = probes
            self.last_retrieved = 0
            return None
        chosen: list[tuple[float, int]] = merge_earliest(runs, need)
        self.last_probes = probes
        self.last_retrieved = len(chosen)
        return chosen

    def uids_inorder(self) -> list[int]:
        """Stored uids in ascending ``(st, uid)`` order."""
        if self.root == NIL:
            return []
        out: list[int] = []
        left = self.left
        right = self.right
        keys = self.keys
        stack = [self.root]
        while stack:
            node = stack.pop()
            lc = left[node]
            if lc == NIL:
                out.append(keys[node][1])
            else:
                stack.append(right[node])
                stack.append(lc)
        return out

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def insert(self, st: float, et: float, uid: int) -> None:
        """Insert one period (O(log² n) amortized); immediate rebalance."""
        unbal = self._insert_op(st, et, uid, None)
        self.last_rebuilt = 0
        if unbal != NIL:
            self._rebuild(unbal)

    def remove(self, st: float, et: float, uid: int) -> bool:
        """Remove one period; returns False when absent (caller raises)."""
        found, unbal = self._remove_op(st, et, uid, None)
        self.last_rebuilt = 0
        if unbal != NIL:
            self._rebuild(unbal)
        return found

    def _insert_op(
        self, st: float, et: float, uid: int, cands: list[int] | None
    ) -> int:
        """One insertion walk.

        With ``cands`` None (sequential mode) returns the highest
        α-unbalanced ancestor found on the path, ``NIL`` when balanced —
        the balance test stops at the first hit, as the follow-up rebuild
        of the highest node fixes everything below it.  In batch mode
        (``cands`` a list) *every* unbalanced node on the path is
        appended as ``(id, epoch)`` pairs flattened into the list, and
        ``NIL`` is returned: rebuilds are the batch flush's job.
        """
        key = (st, uid)
        sec_key = (et, uid)
        self.count += 1
        if self.root == NIL:
            self.root = self._new_node(key, 1, NIL, NIL, NIL, [sec_key])
            self.last_visits = 0
            self.last_probes = 0
            return NIL
        keys = self.keys
        size = self.size
        left = self.left
        right = self.right
        secs = self.secs
        epoch = self.epoch
        node = self.root
        visits = 0
        probes = 0
        unbal = NIL
        while left[node] != NIL:
            visits += 1
            sz = size[node] + 1
            size[node] = sz
            insort_left(secs[node], sec_key)
            # len(secs[node]) == subtree size on every node, so the probe
            # cost needs no len() call
            probes += sz.bit_length()
            lc = left[node]
            child = lc if key <= keys[node] else right[node]
            if cands is None:
                if unbal == NIL:
                    limit = ALPHA * sz
                    other = right[node] if child == lc else lc
                    # the descent child's final size is current + 1 — for
                    # the split leaf too, which becomes an internal node
                    # of size 2 — so the post-update balance test can run
                    # before the update completes
                    if size[child] + 1 > limit or size[other] > limit:
                        unbal = node
            else:
                limit = ALPHA * sz
                other = right[node] if child == lc else lc
                if size[child] + 1 > limit or size[other] > limit:
                    cands.append(node)
                    cands.append(epoch[node])
            node = child
        # split the leaf into an internal node with two leaf children
        old_key = keys[node]
        old_sec = secs[node][0]
        new_leaf = self._new_node(key, 1, NIL, NIL, NIL, [sec_key])
        if key < old_key:
            ileft, iright, ikey = new_leaf, node, key
        else:
            ileft, iright, ikey = node, new_leaf, old_key
        if sec_key < old_sec:
            isec = [sec_key, old_sec]
        else:
            isec = [old_sec, sec_key]
        old_parent = self.parent[node]
        internal = self._new_node(ikey, 2, ileft, iright, old_parent, isec)
        self.parent[node] = internal
        self.parent[new_leaf] = internal
        if old_parent == NIL:
            self.root = internal
        elif self.left[old_parent] == node:
            self.left[old_parent] = internal
        else:
            self.right[old_parent] = internal
        self.last_visits = visits
        self.last_probes = probes
        return unbal

    def _remove_op(
        self, st: float, et: float, uid: int, cands: list[int] | None
    ) -> tuple[bool, int]:
        """One removal walk; returns ``(found, unbal)`` (see _insert_op)."""
        leaf, visits = self.find(st, uid)
        if leaf == NIL:
            self.last_visits = visits
            self.last_probes = 0
            return False, NIL
        self.count -= 1
        par = self.parent
        parent = par[leaf]
        self._free_node(leaf)
        if parent == NIL:
            self.root = NIL
            self.last_visits = visits
            self.last_probes = 0
            return True, NIL
        left = self.left
        right = self.right
        size = self.size
        secs = self.secs
        epoch = self.epoch
        sibling = right[parent] if left[parent] == leaf else left[parent]
        grand = par[parent]
        par[sibling] = grand
        self._free_node(parent)
        if grand == NIL:
            self.root = sibling
        elif left[grand] == parent:
            left[grand] = sibling
        else:
            right[grand] = sibling
        # fused upward walk: sizes below the current ancestor are already
        # final, so the balance test runs in the same pass; the *last*
        # unbalanced node seen is the highest one, as the rebuild wants
        sec_key = (et, uid)
        probes = 0
        unbal = NIL
        anc = grand
        while anc != NIL:
            sz = size[anc] - 1
            size[anc] = sz
            ks = secs[anc]
            del ks[bisect_left(ks, sec_key)]
            probes += (sz + 1).bit_length()
            limit = ALPHA * sz
            if size[left[anc]] > limit or size[right[anc]] > limit:
                if cands is None:
                    unbal = anc
                else:
                    cands.append(anc)
                    cands.append(epoch[anc])
            anc = par[anc]
        self.last_visits = visits
        self.last_probes = probes
        return True, unbal

    def bulk_load(self, items: list[tuple[float, float, int]]) -> None:
        """Replace the contents with ``items`` (``(st, et, uid)`` each)
        in O(k log k) — calendar start-up and horizon rollover."""
        self.root = NIL
        self.count = 0
        self.keys.clear()
        self.size.clear()
        self.left.clear()
        self.right.clear()
        self.parent.clear()
        self.secs.clear()
        self.free.clear()
        self.epoch.clear()
        self.last_rebuilt = 0
        if not items:
            return
        ordered = sorted([(st, uid, et) for st, et, uid in items])
        leaves = [
            self._new_node((st, uid), 1, NIL, NIL, NIL, [(et, uid)])
            for st, uid, et in ordered
        ]
        self.count = len(leaves)
        self.last_rebuilt = len(leaves)
        root = self._build(leaves, 0, len(leaves), [], None)
        self.parent[root] = NIL
        self.root = root

    def apply_batch(
        self,
        removals: list[tuple[float, float, int]],
        inserts: list[tuple[float, float, int]],
    ) -> bool:
        """Apply one allocation's operations against this tree in one pass.

        Removals run first, then insertions; rebalancing is deferred to a
        single flush (see the module docstring).  Accounting totals land
        in the ``last_*`` fields as one fused batch.  Returns False when
        a removal was absent — the tree may then be partially updated,
        matching the sequential failure contract (a missing removal means
        the caller's bookkeeping is already inconsistent).
        """
        n_ops = len(removals) + len(inserts)
        visits = 0
        probes = 0
        self.last_rebuilt = 0
        if n_ops * _BULK_DIVISOR >= self.count + len(inserts) and self.root != NIL:
            return self._apply_bulk(removals, inserts)
        cands: list[int] = []
        for st, et, uid in removals:
            found, _ = self._remove_op(st, et, uid, cands)
            if not found:
                return False
            visits += self.last_visits
            probes += self.last_probes
        for st, et, uid in inserts:
            self._insert_op(st, et, uid, cands)
            visits += self.last_visits
            probes += self.last_probes
        self.last_visits = visits
        self.last_probes = probes
        if cands:
            self._flush_rebuilds(cands)
        return True

    def _apply_bulk(
        self,
        removals: list[tuple[float, float, int]],
        inserts: list[tuple[float, float, int]],
    ) -> bool:
        """Large-batch path: rebuild the whole tree from the merged leaves.

        Works *in place*: surviving leaves keep their node ids (and their
        single-key secondary arrays), dropped leaves are freed, new
        leaves are allocated off the free list, and the old internal
        nodes become the rebuild pool — so the arrays never shrink and
        reallocate the way a clear-and-reload would.
        """
        drop = {uid for _st, _et, uid in removals}
        if len(drop) != len(removals):
            return False
        keys = self.keys
        left = self.left
        right = self.right
        leaves: list[int] = []  # survivors, in (st, uid) order
        pool: list[int] = []  # old internal nodes, recycled by _build
        stack = [self.root]
        while stack:
            node = stack.pop()
            lc = left[node]
            if lc == NIL:
                if keys[node][1] in drop:
                    drop.discard(keys[node][1])
                    self._free_node(node)
                else:
                    leaves.append(node)
            else:
                pool.append(node)
                stack.append(right[node])
                stack.append(lc)
        if drop:
            # a removal was never stored; free the pool so the partially
            # dismantled tree is not silently reused (the caller raises)
            return False
        if inserts:
            ordered = sorted([(st, uid, et) for st, et, uid in inserts])
            fresh = [
                self._new_node((st, uid), 1, NIL, NIL, NIL, [(et, uid)])
                for st, uid, et in ordered
            ]
            # merge the two sorted leaf runs by key
            merged: list[int] = []
            i = 0
            j = 0
            ns = len(leaves)
            nf = len(fresh)
            while i < ns and j < nf:
                if keys[leaves[i]] <= keys[fresh[j]]:
                    merged.append(leaves[i])
                    i += 1
                else:
                    merged.append(fresh[j])
                    j += 1
            if i < ns:
                merged.extend(leaves[i:])
            if j < nf:
                merged.extend(fresh[j:])
            leaves = merged
        self.count = len(leaves)
        self.last_visits = 0
        self.last_probes = 0
        if not leaves:
            for node in pool:
                self._free_node(node)
            self.root = NIL
            return True
        self.last_rebuilt += len(leaves)
        root = self._build(leaves, 0, len(leaves), pool, None)
        for node in pool:  # leftovers when the batch shrank the tree
            self._free_node(node)
        self.parent[root] = NIL
        self.root = root
        return True

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------

    def _flush_rebuilds(self, cands: list[int]) -> None:
        """Rebuild every recorded candidate still live and unbalanced.

        ``cands`` is ``(id, epoch)`` pairs flattened.  Larger subtrees
        are processed first: rebuilding a containing node leaves every
        descendant perfectly balanced, so nested candidates fall out on
        the recheck instead of triggering redundant rebuilds.
        """
        size = self.size
        epoch = self.epoch
        left = self.left
        right = self.right
        pairs: list[tuple[int, int, int]] = []
        seen: set[int] = set()
        for i in range(0, len(cands), 2):
            node = cands[i]
            if node not in seen:
                seen.add(node)
                pairs.append((size[node], node, cands[i + 1]))
        pairs.sort(reverse=True)
        for _sz, node, node_epoch in pairs:
            if epoch[node] != node_epoch:
                continue  # freed (and possibly reused) since recording
            if left[node] == NIL:
                continue  # now a leaf; nothing to rebalance
            sz = size[node]
            limit = ALPHA * sz
            if size[left[node]] > limit or size[right[node]] > limit:
                self._rebuild(node)

    def _rebuild(self, node: int) -> None:
        # capture the attachment point first: `node` itself enters the
        # recycling pool and is rewired while the subtree is rebuilt
        parent = self.parent[node]
        was_left = parent != NIL and self.left[parent] == node
        # the rebuilt root covers the same leaf set, so its merged
        # secondary array is the old root's, verbatim — _build never
        # mutates a recycled node's old array, it only rebinds
        top_sec = self.secs[node]
        leaves: list[int] = []
        pool: list[int] = []
        left = self.left
        right = self.right
        stack = [node]
        while stack:
            cur = stack.pop()
            lc = left[cur]
            if lc == NIL:
                leaves.append(cur)
            else:
                pool.append(cur)
                stack.append(right[cur])
                stack.append(lc)
        self.last_rebuilt += len(leaves)
        fresh = self._build(leaves, 0, len(leaves), pool, top_sec)
        self.parent[fresh] = parent
        if parent == NIL:
            self.root = fresh
        elif was_left:
            self.left[parent] = fresh
        else:
            self.right[parent] = fresh

    def _build(
        self,
        leaves: list[int],
        lo: int,
        hi: int,
        pool: list[int],
        top_sec: list[tuple[float, int]] | None,
    ) -> int:
        """Build a perfectly balanced subtree over ``leaves[lo:hi]``
        (already ordered), recycling internal ids from ``pool``.
        ``top_sec``, when given, is the node's known merged secondary
        array (the largest merge of a rebuild, skipped not recomputed)."""
        if hi - lo == 1:
            leaf = leaves[lo]
            self.left[leaf] = NIL
            self.right[leaf] = NIL
            return leaf
        mid = (lo + hi + 1) // 2  # left gets the extra leaf; key = max of left
        if pool:
            node = pool.pop()
        else:
            node = self._new_node((0.0, 0), 0, NIL, NIL, NIL, [])
        # expand single-leaf children inline: over half of all recursive
        # calls would otherwise be the trivial base case above
        if mid - lo == 1:
            lchild = leaves[lo]
            self.left[lchild] = NIL
            self.right[lchild] = NIL
        else:
            lchild = self._build(leaves, lo, mid, pool, None)
        if hi - mid == 1:
            rchild = leaves[mid]
            self.left[rchild] = NIL
            self.right[rchild] = NIL
        else:
            rchild = self._build(leaves, mid, hi, pool, None)
        self.left[node] = lchild
        self.right[node] = rchild
        self.parent[lchild] = node
        self.parent[rchild] = node
        self.keys[node] = self.keys[leaves[mid - 1]]
        self.size[node] = hi - lo
        if top_sec is not None:
            self.secs[node] = top_sec
            return node
        # merge the children's secondary arrays; when the runs do not
        # interleave (frequent: later-starting periods tend to end later)
        # a plain concatenation suffices, otherwise the concatenation is
        # two sorted runs, which timsort merges in linear time
        lk = self.secs[lchild]
        rk = self.secs[rchild]
        if lk[-1] < rk[0]:
            self.secs[node] = lk + rk
        elif rk[-1] < lk[0]:
            self.secs[node] = rk + lk
        else:
            self.secs[node] = sorted(lk + rk)
        return node
