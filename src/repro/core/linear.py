"""Naive linear-scan co-allocator.

This is the "sequential atomic transaction" strawman the paper's
introduction argues against: to find ``n_r`` servers it simply walks every
server's reservation list and tests whether the window fits.  It is

* the *oracle* for property tests — its feasibility verdicts and chosen
  start times must coincide with the tree-based allocator on any request
  stream (the data structures are an index, not a policy change); and
* the complexity baseline for the ablation benchmarks (tree vs linear
  crossover as ``N`` grows).

It is written independently of the calendar/slot-tree machinery on
purpose: a shared bug cannot hide in shared code.
"""

from __future__ import annotations

from bisect import bisect_left, insort

from .opcount import NULL_COUNTER, OpCounter
from .types import Allocation, Request, Reservation

__all__ = ["LinearScanAllocator"]


class LinearScanAllocator:
    """Brute-force scheduler with the same retry semantics as the online one.

    Parameters mirror :class:`~repro.core.coalloc.OnlineCoAllocator`;
    ``horizon_end`` stands in for the calendar horizon (attempts beyond it
    fail), and must be advanced alongside simulated time via
    :meth:`advance`.
    """

    def __init__(
        self,
        n_servers: int,
        delta_t: float,
        r_max: int,
        horizon: float,
        start_time: float = 0.0,
        counter: OpCounter = NULL_COUNTER,
    ) -> None:
        if n_servers <= 0:
            raise ValueError(f"need at least one server, got {n_servers}")
        self.n_servers = n_servers
        self.delta_t = float(delta_t)
        self.r_max = r_max
        self.horizon = float(horizon)
        self.now = float(start_time)
        #: attempts at or past this time fail; advanced with the clock, and
        #: may be overwritten to mirror another scheduler's (slot-aligned)
        #: horizon exactly.
        self.horizon_end = self.now + self.horizon
        self.counter = counter
        # per-server sorted lists of committed (start, end) intervals
        self._busy: list[list[tuple[float, float]]] = [[] for _ in range(n_servers)]

    def advance(self, to_time: float) -> None:
        """Move the clock; drops intervals that ended in the past."""
        if to_time < self.now:
            raise ValueError(f"cannot move time backwards ({to_time} < {self.now})")
        self.now = to_time
        self.horizon_end = to_time + self.horizon
        for busy in self._busy:
            # count the expired prefix, then drop it with one sliced
            # delete instead of an O(N) shift per expired interval
            n = 0
            for _, interval_end in busy:
                if interval_end > to_time:
                    break
                n += 1
            if n:
                del busy[:n]

    def _fits(self, server: int, start: float, end: float) -> bool:
        """True when ``[start, end)`` overlaps no committed interval."""
        busy = self._busy[server]
        idx = bisect_left(busy, (end, -1.0))  # first interval starting at/after end
        self.counter.add("node_visit", max(1, len(busy).bit_length()))
        return idx == 0 or busy[idx - 1][1] <= start

    def free_servers(self, start: float, end: float) -> list[int]:
        """Every server free throughout ``[start, end)`` (linear scan)."""
        return [s for s in range(self.n_servers) if self._fits(s, start, end)]

    def schedule(self, request: Request) -> Allocation | None:
        """Same contract as :meth:`OnlineCoAllocator.schedule`."""
        base = max(request.sr, self.now)
        latest = request.latest_start
        for k in range(self.r_max):
            start = base + k * self.delta_t
            if start > latest or start >= self.horizon_end:
                return None
            self.counter.add("attempt")
            end = start + request.lr
            free = []
            for server in range(self.n_servers):
                if self._fits(server, start, end):
                    free.append(server)
                    if len(free) == request.nr:
                        break
            if len(free) == request.nr:
                reservations = []
                for server in free:
                    insort(self._busy[server], (start, end))
                    reservations.append(
                        Reservation(rid=request.rid, server=server, start=start, end=end)
                    )
                return Allocation(
                    rid=request.rid,
                    start=start,
                    end=end,
                    reservations=tuple(reservations),
                    attempts=k + 1,
                    delay=start - request.sr,
                )
        return None
