"""The canonical earliest-ending k-way merge, as a pure function.

PR 4 made Phase-2 selection canonical: among the feasible candidate
periods, the globally earliest-ending ones win, ties broken by uid
ascending.  Inside one :class:`~repro.core.slot_tree.TwoDimTree` that is
a k-way merge over the marked subtrees' secondary ``(et, uid)`` arrays.
Across calendar *shards* it is the very same merge, one level up: each
shard returns its own earliest-ending prefix and the coordinator merges
those prefixes.  This module is that merge, factored out so both layers
run literally the same code — the sharded service's bit-identical-
decisions guarantee reduces to the associativity of this function.

The function is deliberately free of tree/shard vocabulary: a *run* is
any ascending list of comparable tuples plus a start offset, and the
result is the globally smallest ``need`` items across all runs, in
order.  Tuples longer than ``(et, uid)`` are fine — ``(et, uid)`` is a
unique prefix for every caller here, so trailing payload fields (server,
st, …) ride along without ever being consulted by a comparison.
"""

from __future__ import annotations

from heapq import heapify, heappop, heapreplace
from typing import Sequence, TypeVar

__all__ = ["merge_earliest"]

_Item = TypeVar("_Item", bound=tuple)  # type: ignore[type-arg]


def merge_earliest(
    runs: Sequence[tuple[Sequence[_Item], int]], need: int
) -> list[_Item]:
    """Merge ascending ``runs`` and return the smallest ``need`` items.

    Parameters
    ----------
    runs:
        ``(keys, start)`` pairs: ``keys`` is sorted ascending and only
        ``keys[start:]`` participates.  Runs whose suffix is empty are
        skipped, so callers may pass them unfiltered.
    need:
        Maximum number of items to take; the result is shorter only when
        the runs are collectively shorter.

    The items' relative order is total across runs (the callers' keys
    carry a unique ``(et, uid)`` prefix), so the output is independent of
    run partitioning: merging per-shard prefixes equals slicing the
    single-calendar order.  Cost is ``O(need · log k)`` for ``k`` live
    runs, with a zero-copy slice fast path when only one run is live.
    """
    if need <= 0:
        return []
    live: list[tuple[Sequence[_Item], int]] = [
        (keys, idx) for keys, idx in runs if idx < len(keys)
    ]
    if not live:
        return []
    if len(live) == 1:
        keys, idx = live[0]
        return list(keys[idx : idx + need])
    heap: list[tuple[_Item, int, int]] = [
        (keys[idx], run, idx) for run, (keys, idx) in enumerate(live)
    ]
    heapify(heap)
    out: list[_Item] = []
    out_append = out.append
    taken = 0
    while heap and taken < need:
        item, run, idx = heap[0]
        out_append(item)
        taken += 1
        idx += 1
        keys = live[run][0]
        if idx < len(keys):
            heapreplace(heap, (keys[idx], run, idx))
        else:
            heappop(heap)
    return out
