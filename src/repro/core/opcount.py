"""Operation-count instrumentation.

Figure 7(b) of the paper reports the *number of computational operations*
the scheduler performs per request as the advance-reservation fraction
grows.  Rather than wall-clock time (noisy, machine dependent) the data
structures count their elementary operations: tree-node visits, key
comparisons, secondary-index probes, and structural updates.

An :class:`OpCounter` is threaded through the calendar, the slot trees and
the co-allocator; all counting is plain integer addition so that the
instrumented code stays cheap enough to leave permanently enabled.
"""

from __future__ import annotations

from collections import Counter

__all__ = ["OpCounter", "NULL_COUNTER"]


class OpCounter:
    """Accumulates named operation counts.

    The categories used by the library:

    ``node_visit``
        Primary-tree nodes touched during Phase 1 or structural updates.
    ``secondary_probe``
        Binary-search steps inside secondary (ending-time) indexes.
    ``mark``
        Subtrees marked as candidate containers in Phase 1.
    ``retrieve``
        Feasible idle periods retrieved (the ``O(n_r)`` traversal).
    ``insert`` / ``remove``
        Idle-period insertions/removals across slot trees.
    ``attempt``
        Scheduling attempts (Phase 1 invocations).
    ``rebuild``
        Leaves rebuilt during weight-balance partial rebuilds.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Counter[str] = Counter()

    def add(self, name: str, n: int = 1) -> None:
        self.counts[name] += n

    # Fused per-operation entry points for the slot-tree hot path: one
    # call per tree operation instead of one per category.  Totals are
    # identical to the equivalent sequence of :meth:`add` calls.

    def add_insert(self, visits: int, probes: int) -> None:
        """One primary-tree insertion: ``visits`` node visits, ``probes``
        secondary binary-search steps."""
        c = self.counts
        c["insert"] += 1
        if visits:
            c["node_visit"] += visits
            c["secondary_probe"] += probes

    def add_remove(self, visits: int, probes: int) -> None:
        """One primary-tree removal, counted like :meth:`add_insert`."""
        c = self.counts
        c["remove"] += 1
        if visits:
            c["node_visit"] += visits
        if probes:
            c["secondary_probe"] += probes

    def add_search(self, visits: int, marks: int, probes: int, retrieved: int) -> None:
        """One Phase-1 walk (+ optional Phase 2) over a slot tree."""
        c = self.counts
        if visits:
            c["node_visit"] += visits
        if marks:
            c["mark"] += marks
        if probes:
            c["secondary_probe"] += probes
        if retrieved:
            c["retrieve"] += retrieved

    def add_batch(self, inserts: int, removals: int, visits: int, probes: int) -> None:
        """One fused batch of tree updates (the batch-reserve path): the
        category totals match the equivalent sequence of
        :meth:`add_insert`/:meth:`add_remove` calls, at one call per batch.
        Rebuild leaf counts are flushed separately — deferred rebalancing
        legitimately rebuilds fewer leaves than the sequential schedule."""
        c = self.counts
        if inserts:
            c["insert"] += inserts
        if removals:
            c["remove"] += removals
        if visits:
            c["node_visit"] += visits
        if probes:
            c["secondary_probe"] += probes

    def total(self) -> int:
        """Total operations across every category."""
        return sum(self.counts.values())

    def get(self, name: str) -> int:
        return self.counts.get(name, 0)

    def reset(self) -> None:
        self.counts.clear()

    def snapshot(self) -> dict[str, int]:
        """An independent copy of the current counts."""
        return dict(self.counts)

    def merge(self, other: "OpCounter") -> None:
        self.counts.update(other.counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"OpCounter({inner})"


class _NullCounter(OpCounter):
    """A counter that discards everything; used when instrumentation is off."""

    __slots__ = ()

    def add(self, name: str, n: int = 1) -> None:  # noqa: D102 - interface
        pass

    def add_insert(self, visits: int, probes: int) -> None:  # noqa: D102
        pass

    def add_remove(self, visits: int, probes: int) -> None:  # noqa: D102
        pass

    def add_search(self, visits: int, marks: int, probes: int, retrieved: int) -> None:  # noqa: D102
        pass

    def add_batch(self, inserts: int, removals: int, visits: int, probes: int) -> None:  # noqa: D102
        pass


#: Shared do-nothing counter; safe because it holds no state.
NULL_COUNTER = _NullCounter()
