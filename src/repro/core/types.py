"""Core value types shared across the library.

The vocabulary follows Section 2 of the paper:

* a *request* ``r = (q_r, s_r, l_r, n_r)`` asks for ``n_r`` servers for
  ``l_r`` time units starting no earlier than ``s_r`` (submitted at ``q_r``);
* an *idle period* is a maximal interval during which one server is free;
* a *reservation* is a committed ``[start, end)`` interval on one server;
* an *allocation* is the set of ``n_r`` reservations granted to a request.

Times are floats in arbitrary units (the simulator uses seconds).  An idle
period whose server has no commitment after ``st`` extends to
``math.inf``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

__all__ = [
    "INF",
    "Request",
    "IdlePeriod",
    "Reservation",
    "Allocation",
    "RangeQuery",
    "ensure_uid_floor",
]

INF = math.inf

_period_uids = itertools.count()


def ensure_uid_floor(floor: int) -> None:
    """Advance the global period-uid counter to at least ``floor``.

    Snapshot restore re-creates idle periods with their *persisted* uids
    (uid order is the tree tie-break, so reusing it keeps a restored
    calendar's selection order bit-identical to the original's).  The
    counter must then skip past every restored uid so freshly created
    periods never collide.
    """
    global _period_uids
    current = next(_period_uids)
    _period_uids = itertools.count(max(current, floor))


@dataclass(frozen=True, slots=True)
class Request:
    """A co-allocation request ``r = (q_r, s_r, l_r, n_r)``.

    Attributes
    ----------
    qr:
        Submission time.
    sr:
        Earliest start time; ``sr > qr`` is an advance reservation.
    lr:
        Temporal size (duration) of the reservation; must be positive.
    nr:
        Spatial size (number of servers); must be a positive integer.
    rid:
        Caller-chosen identifier, carried through to the allocation.
    deadline:
        Optional latest *completion* time.  The scheduler will not start
        the job later than ``deadline - lr`` (Section 5.2's deadline
        extension).
    actual_lr:
        Optional *actual* runtime, when it differs from the estimate
        ``lr`` (SWF logs record both).  Schedulers reserve ``lr`` — the
        paper's model — but simulations may complete the job after
        ``actual_lr`` and, with reclamation enabled, return the surplus.
        Must satisfy ``0 < actual_lr <= lr`` (a job never outlives its
        reservation).
    """

    qr: float
    sr: float
    lr: float
    nr: int
    rid: int = 0
    deadline: float | None = None
    actual_lr: float | None = None

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise ValueError(f"request {self.rid}: duration must be positive, got {self.lr}")
        if self.actual_lr is not None and not 0 < self.actual_lr <= self.lr:
            raise ValueError(
                f"request {self.rid}: actual runtime {self.actual_lr} must lie in (0, {self.lr}]"
            )
        if self.nr <= 0:
            raise ValueError(f"request {self.rid}: spatial size must be positive, got {self.nr}")
        if self.sr < self.qr:
            raise ValueError(
                f"request {self.rid}: start time {self.sr} precedes submission {self.qr}"
            )
        if self.deadline is not None and self.deadline < self.sr + self.lr:
            raise ValueError(
                f"request {self.rid}: deadline {self.deadline} is infeasible "
                f"(earliest completion is {self.sr + self.lr})"
            )

    @property
    def er(self) -> float:
        """Ending time ``e_r = s_r + l_r`` of the earliest-start schedule."""
        return self.sr + self.lr

    @property
    def latest_start(self) -> float:
        """Latest admissible start time (``inf`` without a deadline)."""
        if self.deadline is None:
            return INF
        return self.deadline - self.lr

    @property
    def runtime(self) -> float:
        """The actual runtime: ``actual_lr`` when recorded, else ``lr``."""
        return self.actual_lr if self.actual_lr is not None else self.lr

    def is_advance(self) -> bool:
        """True when the request reserves resources ahead of time."""
        return self.sr > self.qr


@dataclass(frozen=True, slots=True, eq=False)
class IdlePeriod:
    """A maximal interval ``[st, et)`` during which ``server`` is free.

    ``et`` may be ``math.inf`` for the trailing idle period of a server.
    Identity (``uid``) rather than value equality is used so that two
    coincidentally equal intervals on different servers, or re-created
    intervals, never alias each other inside the slot trees.
    """

    server: int
    st: float
    et: float
    uid: int = field(default_factory=lambda: next(_period_uids))

    def __post_init__(self) -> None:
        if not self.st < self.et:
            raise ValueError(f"idle period on server {self.server}: [{self.st}, {self.et}) is empty")

    def is_candidate(self, sr: float) -> bool:
        """Candidate for a request starting at ``sr`` (paper: ``st_i <= s_r``)."""
        return self.st <= sr

    def is_feasible(self, sr: float, er: float) -> bool:
        """Feasible for ``[sr, er)`` (paper: ``st_i <= s_r`` and ``et_i >= e_r``)."""
        return self.st <= sr and self.et >= er

    def overlaps(self, lo: float, hi: float) -> bool:
        """True when the period intersects the half-open window ``[lo, hi)``."""
        return self.st < hi and self.et > lo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdlePeriod(server={self.server}, [{self.st}, {self.et}), uid={self.uid})"


@dataclass(frozen=True, slots=True)
class Reservation:
    """A committed interval ``[start, end)`` on one server for request ``rid``."""

    rid: int
    server: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise ValueError(f"reservation for {self.rid}: [{self.start}, {self.end}) is empty")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class Allocation:
    """The outcome of a successful scheduling attempt.

    Attributes
    ----------
    rid:
        The request this allocation satisfies.
    start, end:
        The common start/end times of all reservations.
    reservations:
        One :class:`Reservation` per allocated server.
    attempts:
        Number of scheduling attempts made (1 = succeeded at ``s_r``).
    delay:
        ``start - s_r``; the waiting time introduced by the scheduler.
    """

    rid: int
    start: float
    end: float
    reservations: tuple[Reservation, ...]
    attempts: int
    delay: float

    @property
    def servers(self) -> tuple[int, ...]:
        return tuple(res.server for res in self.reservations)

    @property
    def nr(self) -> int:
        return len(self.reservations)


@dataclass(frozen=True, slots=True)
class RangeQuery:
    """A temporal range search: all resources free in ``[ta, tb)``.

    Mirrors the paper's range-search feature (``s_r = t_a``,
    ``l_r = t_b - t_a``, ``n_r >= 1``); the scheduler answers without
    committing anything.
    """

    ta: float
    tb: float

    def __post_init__(self) -> None:
        if not self.ta < self.tb:
            raise ValueError(f"range query window [{self.ta}, {self.tb}) is empty")
