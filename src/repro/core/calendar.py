"""Temporal resource availability over a rolling horizon (Section 4.1).

The :class:`AvailabilityCalendar` owns, for a system of ``N`` servers:

* the authoritative per-server lists of idle periods (sorted by start);
* ``Q`` slot-aligned :class:`~repro.core.slot_tree.TwoDimTree` indexes,
  one per slot of length ``tau`` within the horizon ``H = Q * tau``,
  holding the *bounded* idle periods overlapping each slot;
* the **tail index**: one sorted array over the unbounded trailing idle
  periods (``et = ∞``, exactly one per server with no future commitment);
* the *pending set*: bounded periods ending beyond the current horizon,
  which must be added to new slot trees as the horizon rolls forward.

Why the tail index?  The paper stores every idle period in the tree of
every slot it overlaps; a trailing period overlaps *all* ``Q`` slots, so
carving a job out of one (the common case — every allocation at the end
of a server's schedule does it) would cost ``O(n_r · Q · log^2 N)`` tree
updates, the dominant term of the paper's own update bound.  A trailing
period, however, is feasible for *any* window that starts after it does:
its ending time can never fail the Phase-2 test.  Factoring those periods
into a single start-time-sorted array preserves the exact feasibility
semantics (Phase 1's candidate count gains a ``bisect``; Phase 2's
feasible set gains a suffix of the array) while making the common-case
update ``O(log N)`` instead of ``O(Q log^2 N)``.  Selection order is also
preserved sensibly: bounded feasible periods (earliest-ending first, the
paper's secondary-tree in-order preference) are taken before unbounded
ones, which is exactly the best-fit tendency of the paper's traversal.

As simulated time advances past a slot boundary the expired slot's tree
is discarded and a fresh tree is created at the far end of the horizon —
the paper's discard/initialize cycle — seeded with the pending periods
that overlap the new slot.

**Elastic pool.**  The server set may change at runtime (the ROADMAP's
elastic-cluster extension): :meth:`add_servers` grows the pool,
:meth:`drain` stops a server from admitting *new* reservations while
every existing commitment is honored, and :meth:`remove` retires a
server once drained.  Server identity is positional and stable forever —
a removed server keeps its index (with an empty period list) so snapshot
layout, shard arithmetic and every ``range(n_servers)`` iteration stay
valid; ``n_servers`` therefore counts every server that ever joined.
Draining is implemented entirely in the *derived* indexes: the
authoritative per-server lists are untouched (physical idleness is what
conservation audits), but the server's periods leave the slot trees,
tail index and pending buckets, so Phase-1 counts, Phase-2 selection and
range searches naturally stop offering it.  Every server always carries
exactly one trailing unbounded idle period (allocation regenerates the
right remnant, release merges preserve it, history trimming never drops
it), so "drained" has a one-line test: the trailing period starts at or
before ``now``.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right

from .opcount import NULL_COUNTER, OpCounter
from .slot_tree import TwoDimTree
from .types import INF, IdlePeriod, Reservation, ensure_uid_floor

__all__ = ["AvailabilityCalendar", "POOL_STATES"]

#: legal per-server pool states, in lifecycle order (transitions are
#: one-way: active -> draining -> removed)
POOL_STATES = ("active", "draining", "removed")

#: sentinel uid bound making ``(t, _UID_HIGH)`` compare after any real key
_UID_HIGH = math.inf

#: per-slot update batches accumulated by one :meth:`allocate` call:
#: slot index -> (periods to remove from that slot's tree, periods to add)
_SlotBatches = dict[int, tuple[list[IdlePeriod], list[IdlePeriod]]]


class AvailabilityCalendar:
    """Tracks when each of ``n_servers`` is free, indexed for co-allocation.

    Parameters
    ----------
    n_servers:
        Number of servers ``N`` in the system.
    tau:
        Slot length ``τ`` (the paper sets it to the minimum temporal
        reservation size).
    q_slots:
        Number of slots ``Q`` in the horizon; ``H = Q * tau``.
    start_time:
        Simulation time at which the calendar begins; every server is
        idle from ``start_time`` onward.
    counter:
        Optional operation counter shared with the slot trees.
    indexing:
        ``"tail"`` (default) keeps unbounded trailing periods in the
        sorted tail index; ``"dense"`` registers them in every remaining
        slot tree — the paper's literal design, kept for cross-validation
        and for the ablation benchmark that measures what the tail index
        saves.  Both modes return identical scheduling outcomes.
    """

    def __init__(
        self,
        n_servers: int,
        tau: float,
        q_slots: int,
        start_time: float = 0.0,
        counter: OpCounter = NULL_COUNTER,
        indexing: str = "tail",
    ) -> None:
        if indexing not in ("tail", "dense"):
            raise ValueError(f"indexing must be 'tail' or 'dense', got {indexing!r}")
        self.dense = indexing == "dense"
        if n_servers <= 0:
            raise ValueError(f"need at least one server, got {n_servers}")
        if tau <= 0:
            raise ValueError(f"slot length must be positive, got {tau}")
        if q_slots <= 0:
            raise ValueError(f"need at least one slot, got {q_slots}")
        self.n_servers = n_servers
        self.tau = float(tau)
        self.q_slots = q_slots
        self.counter = counter
        self.now = float(start_time)

        # the base slot must come from the same robust arithmetic as
        # slot_of(): floor(start_time / tau) can disagree with slot_of by
        # one near a fractional-tau slot boundary (e.g. 3*0.3 < 0.9), and
        # a snapshot-restored calendar is rebuilt with start_time = the
        # original's now — a floor-based base would shift its horizon one
        # slot relative to the original's, breaking restart identity
        self._base_slot = self.slot_of(self.now)
        self._trees: dict[int, TwoDimTree] = {
            q: TwoDimTree(counter) for q in range(self._base_slot, self._base_slot + q_slots)
        }
        self._server_periods: list[list[IdlePeriod]] = []
        # parallel per-server key arrays: starting times of the periods in
        # ``_server_periods`` (disjoint periods have unique starts per
        # server), so membership and insertion points are a bisect instead
        # of a scan or a per-insert key-list rebuild
        self._server_keys: list[list[float]] = []
        # tail index: unbounded periods, parallel arrays sorted by (st, uid);
        # keyed as float pairs so probes like ``(sr, _UID_HIGH)`` type-check
        self._inf_keys: list[tuple[float, float]] = []
        self._inf_periods: list[IdlePeriod] = []
        # bounded periods ending beyond the horizon, keyed by uid, bucketed
        # by the first not-yet-active slot each overlaps so rollover seeds
        # a new slot tree without scanning the whole pending set
        self._pending: dict[int, IdlePeriod] = {}
        self._pending_slot: dict[int, int] = {}
        self._pending_buckets: dict[int, dict[int, IdlePeriod]] = {}
        # elastic pool: per-server lifecycle state, positionally parallel
        # to _server_periods; only "active" servers live in derived indexes
        self._status: list[str] = ["active"] * n_servers

        initial = []
        for server in range(n_servers):
            period = IdlePeriod(server=server, st=self.now, et=INF)
            self._server_periods.append([period])
            self._server_keys.append([period.st])
            self._inf_keys.append((period.st, period.uid))
            self._inf_periods.append(period)
            initial.append(period)
        if self.dense:
            for tree in self._trees.values():
                tree.bulk_load(initial)

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------

    @property
    def horizon_start(self) -> float:
        """Start of the first active slot."""
        return self._base_slot * self.tau

    @property
    def horizon_end(self) -> float:
        """End of the last active slot; nothing later can be searched."""
        return (self._base_slot + self.q_slots) * self.tau

    def slot_of(self, t: float) -> int:
        """Absolute index of the slot containing time ``t``.

        Robust against the ≤1-ulp rounding of ``t / tau`` for non-integral
        ``tau``: the result always satisfies ``q*tau <= t < (q+1)*tau``
        under the *same* float products that slot-overlap tests use, so a
        time sitting exactly on a slot boundary can never be attributed to
        the wrong slot.
        """
        tau = self.tau
        q = int(t // tau)
        while t < q * tau:
            q -= 1
        while t >= (q + 1) * tau:
            q += 1
        return q

    def in_horizon(self, t: float) -> bool:
        """True when ``t`` falls inside an active slot."""
        return self._base_slot <= self.slot_of(t) < self._base_slot + self.q_slots

    def tree_for(self, t: float) -> TwoDimTree:
        """The slot tree indexing time ``t``; raises ``KeyError`` outside the horizon."""
        q = self.slot_of(t)
        try:
            return self._trees[q]
        except KeyError:
            raise KeyError(
                f"time {t} (slot {q}) is outside the active horizon "
                f"[{self.horizon_start}, {self.horizon_end})"
            ) from None

    # ------------------------------------------------------------------
    # time advance / rollover
    # ------------------------------------------------------------------

    def advance(self, to_time: float) -> None:
        """Move the clock forward, rolling the horizon over expired slots.

        For every slot that fully expires, its tree is discarded and a
        new tree is initialized at the end of the horizon, seeded with
        the pending bounded periods that now overlap it.
        """
        if to_time < self.now:
            raise ValueError(f"cannot move time backwards ({to_time} < {self.now})")
        self.now = to_time
        current = self.slot_of(to_time)
        rolled = False
        while self._base_slot < current:
            del self._trees[self._base_slot]
            self._base_slot += 1
            new_slot = self._base_slot + self.q_slots - 1
            new_end = (new_slot + 1) * self.tau
            tree = TwoDimTree(self.counter)
            bucket = self._pending_buckets.pop(new_slot, None)
            seeds = list(bucket.values()) if bucket else []
            if self.dense:
                # (new_end, -1.0) sorts before any real (new_end, uid) key,
                # matching the old 1-tuple probe while keeping key types uniform
                seeds.extend(
                    self._inf_periods[: bisect_left(self._inf_keys, (new_end, -1.0))]
                )
            tree.bulk_load(seeds)
            self._trees[new_slot] = tree
            if bucket:
                # periods now fully inside the horizon leave the pending
                # set; the rest overlap the next slot too and carry over
                carry: dict[int, IdlePeriod] = {}
                for uid, p in bucket.items():
                    if p.et > new_end:
                        carry[uid] = p
                        self._pending_slot[uid] = new_slot + 1
                    else:
                        del self._pending[uid]
                        del self._pending_slot[uid]
                if carry:
                    nxt = self._pending_buckets.setdefault(new_slot + 1, {})
                    nxt.update(carry)
            rolled = True
        if rolled:
            self._trim_history()

    def _trim_history(self) -> None:
        """Drop per-server periods that ended before the horizon start."""
        cutoff = self.horizon_start
        for server, periods in enumerate(self._server_periods):
            n = 0
            for p in periods:
                if p.et > cutoff:
                    break
                n += 1
            if n:
                del periods[:n]
                del self._server_keys[server][:n]

    # ------------------------------------------------------------------
    # period registration
    # ------------------------------------------------------------------

    def _last_overlapping_slot(self, et: float) -> int:
        """Last slot a period with (finite) ending time ``et`` overlaps.

        ``et`` is an open endpoint: a period ending exactly on a slot
        boundary does not overlap the next slot.  :meth:`slot_of` pins
        ``et`` to the slot whose boundary products bracket it, so the
        boundary test is a float-exact comparison rather than the modulo
        arithmetic that drifts for non-integral ``tau``.
        """
        q = self.slot_of(et)
        return q - 1 if et <= q * self.tau else q

    def _overlapping_slots(self, period: IdlePeriod) -> range:
        """Active slot indexes a tree-indexed period must appear in."""
        first = max(self.slot_of(period.st), self._base_slot)
        if period.et == INF:
            # only reachable in dense mode: an unbounded period overlaps
            # every remaining slot of the horizon
            last = self._base_slot + self.q_slots - 1
        else:
            last = min(self._last_overlapping_slot(period.et), self._base_slot + self.q_slots - 1)
        if first > last:
            return range(0)
        return range(first, last + 1)

    def _index_period(self, period: IdlePeriod, batches: _SlotBatches | None = None) -> None:
        """Register ``period`` with every derived index.

        With ``batches`` given (the batch-reserve path), per-slot tree
        insertions are *recorded* under their slot instead of applied —
        :meth:`allocate` flushes each slot's accumulated operations as one
        fused :meth:`~repro.core.slot_tree.TwoDimTree.apply_batch` call.
        Tail-index and pending bookkeeping stay immediate either way
        (they are O(log N) array work with no rebalancing to fuse).

        Periods of draining or removed servers are *not* registered in
        any derived index — a drained-out server must stop appearing in
        searches, while cancellations may still merge and re-create its
        authoritative periods.
        """
        if self._status[period.server] != "active":
            return
        if period.et == INF:
            idx = bisect_right(self._inf_keys, (period.st, period.uid))
            self._inf_keys.insert(idx, (period.st, period.uid))
            self._inf_periods.insert(idx, period)
            self.counter.add("insert")
            if not self.dense:
                return
            # dense (paper-literal) mode: the trailing period also lives
            # in the tree of every remaining slot
        if batches is None:
            trees = self._trees
            for q in self._overlapping_slots(period):
                trees[q].insert(period)
        else:
            for q in self._overlapping_slots(period):
                batches.setdefault(q, ([], []))[1].append(period)
        if period.et != INF and period.et > self.horizon_end:
            bucket_slot = max(self.slot_of(period.st), self._base_slot + self.q_slots)
            self._pending[period.uid] = period
            self._pending_slot[period.uid] = bucket_slot
            self._pending_buckets.setdefault(bucket_slot, {})[period.uid] = period

    def _unindex_period(self, period: IdlePeriod, batches: _SlotBatches | None = None) -> None:
        if self._status[period.server] != "active":
            # non-active servers' periods were unindexed when the server
            # left the pool (see drain); there is nothing to remove
            return
        if period.et == INF:
            idx = bisect_right(self._inf_keys, (period.st, period.uid)) - 1
            assert idx >= 0 and self._inf_keys[idx] == (period.st, period.uid)
            self._inf_keys.pop(idx)
            self._inf_periods.pop(idx)
            self.counter.add("remove")
            if not self.dense:
                return
        if batches is None:
            trees = self._trees
            for q in self._overlapping_slots(period):
                trees[q].remove(period)
        else:
            for q in self._overlapping_slots(period):
                batches.setdefault(q, ([], []))[0].append(period)
        if self._pending.pop(period.uid, None) is not None:
            bucket_slot = self._pending_slot.pop(period.uid)
            bucket = self._pending_buckets[bucket_slot]
            del bucket[period.uid]
            if not bucket:
                del self._pending_buckets[bucket_slot]

    def _add_period(self, period: IdlePeriod, batches: _SlotBatches | None = None) -> None:
        keys = self._server_keys[period.server]
        idx = bisect_right(keys, period.st)
        keys.insert(idx, period.st)
        self._server_periods[period.server].insert(idx, period)
        self._index_period(period, batches)

    def _drop_period(self, period: IdlePeriod, batches: _SlotBatches | None = None) -> None:
        keys = self._server_keys[period.server]
        periods = self._server_periods[period.server]
        idx = bisect_left(keys, period.st)
        # starts are unique per server, so the key pins the exact period;
        # a stale handle (already carved by someone else) raises, matching
        # the commit-after-range-search failure contract
        if idx >= len(periods) or periods[idx] is not period:
            raise ValueError(f"{period} is not registered on server {period.server}")
        del keys[idx]
        del periods[idx]
        self._unindex_period(period, batches)

    # ------------------------------------------------------------------
    # allocation and release
    # ------------------------------------------------------------------

    def allocate(
        self,
        periods: list[IdlePeriod],
        start: float,
        end: float,
        rid: int = 0,
        remnant_uids: list[int] | None = None,
    ) -> list[Reservation]:
        """Carve ``[start, end)`` out of each given feasible idle period.

        Each period is removed from every index it lives in and replaced
        by at most two remnants — ``(st, start)`` and ``(end, et)`` —
        exactly the update rule of Section 4.2.

        ``remnant_uids``, when given, supplies the uid of every remnant
        created, consumed left-then-right per period in order — the
        sharded coordinator assigns uids centrally so that remnant uid
        order (the slot trees' tie-break) matches the single-calendar
        creation order exactly.  Raises ``ValueError`` if the list runs
        out before every remnant is created.

        This is the batch-reserve path: the ``O(n_r · Q)`` slot-tree
        updates one request implies are accumulated per slot while the
        authoritative lists and the tail/pending indexes update in the
        usual order, then each touched slot tree applies its removals and
        insertions as one fused
        :meth:`~repro.core.slot_tree.TwoDimTree.apply_batch` pass with
        deferred rebalancing.  Remnant uids are created in exactly the
        sequential order (left remnant then right remnant, period by
        period), and Phase-2 selection is a pure function of stored
        periods — so fusing changes no scheduling outcome.
        """
        uid_iter = iter(remnant_uids) if remnant_uids is not None else None

        def fresh(server: int, st: float, et: float) -> IdlePeriod:
            if uid_iter is None:
                return IdlePeriod(server=server, st=st, et=et)
            uid = next(uid_iter, None)
            if uid is None:
                raise ValueError("remnant_uids exhausted before all remnants were made")
            return IdlePeriod(server=server, st=st, et=et, uid=uid)

        for period in periods:
            if not period.is_feasible(start, end):
                raise ValueError(
                    f"period {period} cannot host [{start}, {end}) on server {period.server}"
                )
        batches: _SlotBatches = {}
        reservations: list[Reservation] = []
        for period in periods:
            self._drop_period(period, batches)
            if period.st < start:
                self._add_period(fresh(period.server, period.st, start), batches)
            if end < period.et:
                self._add_period(fresh(period.server, end, period.et), batches)
            reservations.append(Reservation(rid=rid, server=period.server, start=start, end=end))
        trees = self._trees
        for q, (removals, inserts) in batches.items():
            trees[q].apply_batch(removals, inserts)
        return reservations

    def release(
        self, server: int, start: float, end: float, uid: int | None = None
    ) -> None:
        """Return ``[start, end)`` on ``server`` to the idle pool.

        Used by cancellation and early-completion reclamation.  The
        released interval is merged with adjacent idle periods so that
        idle periods stay maximal.  ``uid``, when given, is assigned to
        the merged period (the sharded coordinator numbers releases
        centrally for uid-order parity with a single calendar).
        """
        if not start < end:
            raise ValueError(f"release window [{start}, {end}) is empty")
        periods = self._server_periods[server]
        keys = self._server_keys[server]
        lo, hi = start, end
        # the only merge candidates are the period ending exactly at
        # ``start`` (the last one starting before it) and the one starting
        # exactly at ``end`` — both found by bisect on the key array
        idx = bisect_left(keys, end)
        if idx < len(keys) and keys[idx] == end:
            hi = periods[idx].et
            self._drop_period(periods[idx])
        idx = bisect_left(keys, start) - 1
        if idx >= 0 and periods[idx].et == start:
            lo = periods[idx].st
            self._drop_period(periods[idx])
        # disjointness check: only the immediate neighbours of the merged
        # window can overlap it (periods are sorted and pairwise disjoint)
        idx = bisect_left(keys, lo)
        for neighbour_idx in (idx - 1, idx):
            if 0 <= neighbour_idx < len(periods) and periods[neighbour_idx].overlaps(lo, hi):
                raise ValueError(
                    f"release of [{start}, {end}) on server {server} overlaps "
                    f"idle period {periods[neighbour_idx]}"
                )
        if uid is None:
            self._add_period(IdlePeriod(server=server, st=lo, et=hi))
        else:
            self._add_period(IdlePeriod(server=server, st=lo, et=hi, uid=uid))

    # ------------------------------------------------------------------
    # elastic pool (runtime join / drain / leave)
    # ------------------------------------------------------------------

    def _check_server(self, server: int) -> None:
        if not 0 <= server < self.n_servers:
            raise ValueError(
                f"server {server} out of range (pool has ever held "
                f"{self.n_servers} servers)"
            )

    def server_status(self, server: int) -> str:
        """Lifecycle state of one server: active, draining or removed."""
        self._check_server(server)
        return self._status[server]

    def pool_counts(self) -> dict[str, int]:
        """Pool membership by state; ``total`` counts every id ever used."""
        counts = {state: 0 for state in POOL_STATES}
        for status in self._status:
            counts[status] += 1
        counts["total"] = self.n_servers
        return counts

    def pool_status(self) -> dict[str, object]:
        """Pool membership plus per-server drain progress."""
        return {
            **self.pool_counts(),
            "servers": list(self._status),
            "drain_progress": [
                {"server": s, "drained": self.is_drained(s)}
                for s in range(self.n_servers)
                if self._status[s] == "draining"
            ],
        }

    def is_drained(self, server: int) -> bool:
        """True when ``server`` holds no commitment after ``now``.

        Every non-removed server carries exactly one trailing unbounded
        idle period; the server is drained exactly when that period has
        already begun.  Removed servers are trivially drained.
        """
        self._check_server(server)
        if self._status[server] == "removed":
            return True
        trailing = self._server_periods[server][-1]
        assert trailing.et == INF, f"server {server} lost its trailing period"
        return trailing.st <= self.now

    def add_servers(self, count: int, uids: list[int] | None = None) -> list[int]:
        """Grow the pool by ``count`` fresh servers, idle from ``now`` on.

        Returns the new server ids (always ``n_servers_before .. +count``).
        ``uids``, when given, supplies the uid of each new trailing idle
        period in server order — the sharded coordinator numbers them
        centrally for uid-order parity with a single calendar.
        """
        if count <= 0:
            raise ValueError(f"must add at least one server, got {count}")
        if uids is not None and len(uids) != count:
            raise ValueError(f"got {len(uids)} uids for {count} new servers")
        new_ids = list(range(self.n_servers, self.n_servers + count))
        for i, server in enumerate(new_ids):
            self._server_periods.append([])
            self._server_keys.append([])
            self._status.append("active")
            self.n_servers += 1
            if uids is None:
                period = IdlePeriod(server=server, st=self.now, et=INF)
            else:
                period = IdlePeriod(server=server, st=self.now, et=INF, uid=uids[i])
            self._add_period(period)
        return new_ids

    def drain(self, server: int) -> bool:
        """Stop ``server`` from admitting new periods; keep its commitments.

        Unindexes every one of the server's idle periods from the derived
        indexes (slot trees, tail index, pending buckets) so searches stop
        offering it, while the authoritative list — physical idleness —
        is untouched and existing reservations are honored to the end.
        Idempotent on an already-draining server (returns ``False``);
        raises :class:`ValueError` for a removed server.
        """
        self._check_server(server)
        if self._status[server] == "draining":
            return False
        if self._status[server] == "removed":
            raise ValueError(f"server {server} was removed from the pool")
        # unindex while the status still reads active (the unindex path
        # skips non-active servers), then flip
        for period in self._server_periods[server]:
            self._unindex_period(period)
        self._status[server] = "draining"
        return True

    def remove(self, server: int) -> bool:
        """Retire a drained server; only legal once draining *and* drained.

        The server keeps its positional id forever with an empty period
        list.  Idempotent on an already-removed server (returns
        ``False``); raises :class:`ValueError` when the server is still
        active or still holds a commitment after ``now``.
        """
        self._check_server(server)
        if self._status[server] == "removed":
            return False
        if self._status[server] == "active":
            raise ValueError(f"server {server} must be drained before removal")
        if not self.is_drained(server):
            trailing = self._server_periods[server][-1]
            raise ValueError(
                f"server {server} still holds commitments until {trailing.st} "
                f"(now={self.now})"
            )
        # periods left every derived index at drain time; dropping the
        # authoritative list is all that remains
        self._server_periods[server].clear()
        self._server_keys[server].clear()
        self._status[server] = "removed"
        return True

    # ------------------------------------------------------------------
    # queries (Phase 1 + Phase 2, tree and tail combined)
    # ------------------------------------------------------------------

    def _tail_candidates(self, sr: float) -> int:
        """Unbounded periods with ``st <= sr`` (all feasible for any window).

        In dense mode trailing periods live inside the trees, so the tail
        index contributes nothing to searches (it remains the rollover
        registry).
        """
        if self.dense:
            return 0
        count = bisect_right(self._inf_keys, (sr, _UID_HIGH))
        self.counter.add("secondary_probe", max(1, len(self._inf_keys).bit_length()))
        return count

    def find_feasible(self, sr: float, er: float, nr: int) -> list[IdlePeriod] | None:
        """Feasible idle periods for ``[sr, er)`` × ``nr`` servers, or ``None``.

        Pure query — nothing is committed.  Bounded periods are preferred
        (earliest-ending first), then trailing periods (latest-starting
        first), yielding best-fit-style packing.
        """
        q = self.slot_of(sr)
        if not self._base_slot <= q < self._base_slot + self.q_slots:
            return None
        tree = self._trees[q]
        count, marks = tree.phase1(sr)
        tail_count = self._tail_candidates(sr)
        if count + tail_count < nr:
            return None  # Phase 1 verdict: not enough candidates
        chosen = tree.phase2(marks, er, nr, partial=True) or []
        if len(chosen) >= nr:
            return chosen[:nr]
        need = nr - len(chosen)
        if tail_count < need:
            return None  # Phase 2 verdict: not enough feasible periods
        tail = self._inf_periods[tail_count - need : tail_count]
        tail.reverse()  # latest-starting trailing periods first
        self.counter.add("retrieve", need)
        return chosen + tail

    def range_search(self, ta: float, tb: float) -> list[IdlePeriod]:
        """Every idle period covering the whole window ``[ta, tb)``.

        The paper's range-search feature: users inspect availability and
        commit later via :meth:`allocate`.
        """
        q = self.slot_of(ta)
        if not self._base_slot <= q < self._base_slot + self.q_slots:
            return []
        found = self._trees[q].range_search(ta, tb)
        if not self.dense:
            tail_count = self._tail_candidates(ta)
            found.extend(self._inf_periods[:tail_count])
        return found

    def idle_periods(self, server: int) -> list[IdlePeriod]:
        """A copy of the authoritative idle-period list for one server."""
        return list(self._server_periods[server])

    def period_at(self, server: int, st: float) -> IdlePeriod:
        """The idle period on ``server`` starting exactly at ``st``.

        Starts are unique per server (periods are maximal and disjoint),
        so ``(server, st)`` pins one period; raises ``KeyError`` when no
        period starts there.  The sharded commit path uses this to turn a
        coordinator-chosen ``(server, st)`` pick back into the live
        period object.
        """
        keys = self._server_keys[server]
        idx = bisect_left(keys, st)
        if idx >= len(keys) or keys[idx] != st:
            raise KeyError(f"no idle period starting at {st} on server {server}")
        return self._server_periods[server][idx]

    # ------------------------------------------------------------------
    # serializable state (snapshot/restore support)
    # ------------------------------------------------------------------

    def export_state(self) -> dict[str, object]:
        """The calendar's authoritative state as JSON-serializable data.

        Only the *authoritative* per-server idle-period lists are
        exported; every derived index (slot trees, tail index, pending
        buckets) is rebuilt by :meth:`from_state`.  ``math.inf`` ending
        times serialize as ``None`` (JSON has no ``Infinity``).  Period
        ``uid``\\ s ride along because uid order is the slot trees'
        tie-break among equal keys — restoring them keeps a restored
        calendar's selection order bit-identical to the original's.

        The export is deterministic: periods appear in their sorted
        per-server order, so ``export → restore → export`` round-trips
        byte-identically once serialized with sorted keys.
        """
        return {
            "n_servers": self.n_servers,
            "tau": self.tau,
            "q_slots": self.q_slots,
            "now": self.now,
            "indexing": "dense" if self.dense else "tail",
            "pool": list(self._status),
            "periods": [
                [[p.st, None if p.et == INF else p.et, p.uid] for p in periods]
                for periods in self._server_periods
            ],
        }

    @staticmethod
    def validate_pool_state(state: dict[str, object]) -> list[str]:
        """Check the ``pool`` section of an exported state, returning it.

        A missing section is the pre-elastic format and reads as an
        all-active pool; a *present but malformed* one (wrong length,
        unknown state, a removed server still holding periods) is a hard
        :class:`ValueError` — never a silently-empty pool.
        """
        n_servers = int(state["n_servers"])  # type: ignore[arg-type]
        pool = state.get("pool")
        if pool is None:
            return ["active"] * n_servers
        if not isinstance(pool, list) or len(pool) != n_servers:
            raise ValueError(
                f"calendar pool section lists "
                f"{len(pool) if isinstance(pool, list) else '?'} servers, "
                f"header says {n_servers}"
            )
        for server, status in enumerate(pool):
            if status not in POOL_STATES:
                raise ValueError(
                    f"calendar pool section has unknown state {status!r} "
                    f"for server {server}"
                )
        periods = state.get("periods")
        if isinstance(periods, list) and len(periods) == n_servers:
            for server, status in enumerate(pool):
                if status == "removed" and periods[server]:
                    raise ValueError(
                        f"calendar pool section marks server {server} removed "
                        f"but it still lists {len(periods[server])} period(s)"
                    )
        return [str(status) for status in pool]

    @classmethod
    def from_state(
        cls, state: dict[str, object], counter: OpCounter = NULL_COUNTER
    ) -> "AvailabilityCalendar":
        """Rebuild a calendar from :meth:`export_state` output.

        The restored instance is behaviorally identical to the exported
        one: same clock, same horizon geometry, same idle periods *with
        their original uids* (the tie-break order inside the trees), and
        all slot-tree/tail/pending indexes reconstructed from scratch.
        The global uid counter is advanced past every restored uid so
        fresh periods never collide.
        """
        n_servers = int(state["n_servers"])  # type: ignore[arg-type]
        now = float(state["now"])  # type: ignore[arg-type]
        periods = state["periods"]
        if not isinstance(periods, list) or len(periods) != n_servers:
            raise ValueError(
                f"calendar state lists {len(periods) if isinstance(periods, list) else '?'} "
                f"servers, header says {n_servers}"
            )
        calendar = cls(
            n_servers=n_servers,
            tau=float(state["tau"]),  # type: ignore[arg-type]
            q_slots=int(state["q_slots"]),  # type: ignore[arg-type]
            start_time=now,
            counter=counter,
            indexing=str(state.get("indexing", "tail")),
        )
        pool = cls.validate_pool_state(state)
        # drop the constructor's synthetic everyone-idle-from-now periods,
        # then register the recorded ones through the normal indexing path
        # — with the pool states applied first, so draining/removed
        # servers' periods stay out of the derived indexes
        for server in range(n_servers):
            for period in list(calendar._server_periods[server]):
                calendar._drop_period(period)
        calendar._status = pool
        max_uid = -1
        for server, server_periods in enumerate(periods):
            last_end = -INF
            for st_et_uid in server_periods:
                st = float(st_et_uid[0])
                et = INF if st_et_uid[1] is None else float(st_et_uid[1])
                uid = int(st_et_uid[2])
                if st < last_end:
                    raise ValueError(
                        f"calendar state for server {server} is not sorted/disjoint "
                        f"around [{st}, {et})"
                    )
                last_end = et
                max_uid = max(max_uid, uid)
                calendar._add_period(IdlePeriod(server=server, st=st, et=et, uid=uid))
        ensure_uid_floor(max_uid + 1)
        return calendar

    # ------------------------------------------------------------------
    # verification (test support)
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Cross-check per-server lists, slot trees, tail index and pending set.

        Delegates to :func:`repro.analysis.audit.audit_calendar`, which
        audits every slot tree plus the cross-structure invariants (one
        stable check ID each — see ``docs/analysis.md``).  The raised
        :class:`~repro.analysis.audit.AuditError` subclasses
        ``AssertionError``, preserving this method's contract.
        """
        from ..analysis.audit import AuditError, audit_calendar

        findings = audit_calendar(self)
        if findings:
            raise AuditError(findings)
