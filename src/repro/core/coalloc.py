"""The online co-allocation algorithm of Section 4.2.

:class:`OnlineCoAllocator` wraps an
:class:`~repro.core.calendar.AvailabilityCalendar` and implements the
paper's scheduling loop:

1. attempt to find ``n_r`` feasible idle periods starting at ``s_r``
   (Phase 1 + Phase 2 range search in the slot tree of ``slot(s_r)``);
2. on failure, retry at ``s_r + Δt``, ``s_r + 2Δt``, … up to ``R_max``
   total attempts;
3. on success, commit the reservations and report the allocation together
   with the attempt count and the incurred delay.

Deadline support (the Section 5.2 extension) falls out naturally: a
request with a deadline simply stops retrying once the candidate start
would miss ``deadline - l_r``.

The allocator also exposes the paper's *temporal range search*: retrieve
every resource available in a window without committing, letting the
caller post-process (e.g. the lambda-grid application selects a path and
wavelength among the returned resources) and commit later.
"""

from __future__ import annotations

from dataclasses import dataclass

from .calendar import AvailabilityCalendar
from .merge import merge_earliest
from .opcount import NULL_COUNTER, OpCounter
from .types import Allocation, IdlePeriod, RangeQuery, Request

__all__ = ["OnlineCoAllocator", "ScheduleOutcome", "merge_earliest"]


@dataclass(frozen=True, slots=True)
class ScheduleOutcome:
    """Full result of one scheduling call, success or not.

    ``attempts`` is the number of Phase-1 searches actually performed —
    a deadline or horizon early exit stops the retry loop before
    ``R_max``, and the count reflects that (it may even be zero when the
    very first candidate start is already out of range).
    """

    #: the committed allocation, or ``None`` when the request was rejected
    allocation: Allocation | None
    #: scheduling attempts actually made (``<= R_max``)
    attempts: int
    #: why the request failed: ``"deadline"`` (next start would miss the
    #: deadline), ``"horizon"`` (next start beyond the schedulable
    #: horizon), ``"exhausted"`` (all ``R_max`` attempts failed);
    #: ``None`` on success
    reason: str | None


class OnlineCoAllocator:
    """Online scheduler with advance reservations and bounded retries.

    Parameters
    ----------
    calendar:
        The availability calendar to allocate from.
    delta_t:
        Retry increment ``Δt`` (the paper uses 15 minutes).
    r_max:
        Maximum number of scheduling attempts per request (the paper sets
        ``R_max = Q/2``); ``R_max · Δt`` bounds the delay a request can
        accumulate.
    counter:
        Operation counter; pass the calendar's counter to aggregate data
        structure and scheduler operations in one place.
    """

    def __init__(
        self,
        calendar: AvailabilityCalendar,
        delta_t: float,
        r_max: int,
        counter: OpCounter = NULL_COUNTER,
    ) -> None:
        if delta_t <= 0:
            raise ValueError(f"retry increment must be positive, got {delta_t}")
        if r_max < 1:
            raise ValueError(f"need at least one scheduling attempt, got {r_max}")
        self.calendar = calendar
        self.delta_t = float(delta_t)
        self.r_max = r_max
        self.counter = counter

    def schedule(self, request: Request) -> Allocation | None:
        """Schedule a request; returns ``None`` when every attempt fails.

        The first attempt is made at ``max(s_r, now)`` — a request whose
        earliest start lies in the past (e.g. replayed from a trace) is
        scheduled from the current time.
        """
        return self.schedule_detailed(request).allocation

    def schedule_detailed(self, request: Request) -> ScheduleOutcome:
        """Like :meth:`schedule`, but always reports attempts and reason.

        Callers tracking per-request effort (``job.attempts``, Table 2)
        need the *actual* attempt count on failure: a deadline or horizon
        early exit performs fewer than ``R_max`` attempts.
        """
        calendar = self.calendar
        base = max(request.sr, calendar.now)
        latest = request.latest_start
        for k in range(self.r_max):
            start = base + k * self.delta_t
            if start > latest:
                # any later start would miss the deadline
                return ScheduleOutcome(None, k, "deadline")
            if not calendar.in_horizon(start):
                # beyond the schedulable horizon
                return ScheduleOutcome(None, k, "horizon")
            self.counter.add("attempt")
            end = start + request.lr
            feasible = calendar.find_feasible(start, end, request.nr)
            if feasible is not None:
                reservations = calendar.allocate(feasible, start, end, rid=request.rid)
                allocation = Allocation(
                    rid=request.rid,
                    start=start,
                    end=end,
                    reservations=tuple(reservations),
                    attempts=k + 1,
                    delay=start - request.sr,
                )
                return ScheduleOutcome(allocation, k + 1, None)
        return ScheduleOutcome(None, self.r_max, "exhausted")

    def range_search(self, query: RangeQuery) -> list[IdlePeriod]:
        """All idle periods covering ``[ta, tb)``; commits nothing.

        The caller may post-process the result and commit a subset via
        :meth:`commit`.
        """
        self.counter.add("attempt")
        return self.calendar.range_search(query.ta, query.tb)

    def commit(
        self, periods: list[IdlePeriod], start: float, end: float, rid: int = 0
    ) -> Allocation:
        """Commit specific idle periods found by an earlier range search.

        Raises ``ValueError`` if any period can no longer host the window
        (someone else committed it in between).
        """
        reservations = self.calendar.allocate(periods, start, end, rid=rid)
        return Allocation(
            rid=rid,
            start=start,
            end=end,
            reservations=tuple(reservations),
            attempts=1,
            delay=0.0,
        )
