"""Shim for legacy editable installs (offline environments without the
``wheel`` package must use ``pip install -e . --no-use-pep517``)."""

from setuptools import setup

setup()
