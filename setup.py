"""Build shim: legacy editable installs + the optional compiled core.

Plain ``pip install -e .`` (or ``--no-use-pep517`` in offline
environments without the ``wheel`` package) builds the pure-python
package exactly as before.

Setting ``REPRO_MYPYC=1`` in the build environment compiles the
allocation kernel with mypyc::

    REPRO_MYPYC=1 pip install -e .

Only the monkeypatch-free leaf modules are compiled —
``repro/core/_kernel.py`` (the array-backed slot-tree storage) and
``repro/core/merge.py`` (the canonical Phase-2 k-way merge).  The
wrapper modules around them (``slot_tree.py``, ``calendar.py``) stay
interpreted on purpose: the audit engine's ``MutationAuditor``
monkeypatches calendar methods and the differential fuzzer patches
``TwoDimTree.phase2``, neither of which works on mypyc-compiled classes.

At runtime ``REPRO_PURE_CORE=1`` forces the pure-python kernel even when
the compiled extension is installed (see ``repro.core.slot_tree``); CI
runs the benchmark under both and gates on checksum equality.
"""

import os

from setuptools import setup

ext_modules = []
if os.environ.get("REPRO_MYPYC", "").strip().lower() not in ("", "0", "off", "false", "no"):
    from mypyc.build import mypycify  # build-time dependency, opt-in only

    ext_modules = mypycify(
        [
            "src/repro/core/_kernel.py",
            "src/repro/core/merge.py",
        ],
        opt_level="3",
    )

setup(ext_modules=ext_modules)
