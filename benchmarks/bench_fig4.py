"""Bench F4 — Figure 4: waiting-time and temporal-size distributions.

Shape assertions (paper Section 5.1): the online scheduler's waiting
times concentrate at small values with a tail *far* shorter than the
batch scheduler's (19 h vs 674 h on CTC in the paper), and the workloads
themselves differ — most KTH jobs under 2 h, few CTC jobs under 2 h.
"""

from repro.experiments import fig4

from .conftest import run_once


def test_fig4_distributions(benchmark, config, shape_gates):
    rendered = run_once(benchmark, fig4.run, config)
    print("\n" + rendered)

    if not shape_gates:
        return
    # (a) tails: online max wait far below batch max wait on both systems
    tails = fig4.max_waits(config)
    for workload in ("CTC", "KTH"):
        assert tails[f"{workload}-online"] < 0.5 * tails[f"{workload}-batch"], (
            f"{workload}: online tail {tails[f'{workload}-online']:.1f}h not well "
            f"below batch {tails[f'{workload}-batch']:.1f}h"
        )

    # (b) duration mix: KTH short-job mass dominates, CTC's does not
    lefts, curves = fig4.duration_distributions(config)
    first_bin = 0  # [0, 2) hours
    assert curves["KTH"][first_bin] > 0.5
    assert curves["CTC"][first_bin] < 0.2
    benchmark.extra_info["figure"] = rendered
