"""Benches for the extension experiments (deadline support, load sweep).

These are not paper artifacts; they quantify the extensions Section 5.2
sketches and the utilization/delay trade-off the conclusion claims.
"""

import numpy as np

from repro.experiments import deadlines, loadsweep

from .conftest import run_once


def test_deadline_acceptance_vs_slack(benchmark, config, shape_gates):
    rendered = run_once(benchmark, deadlines.run, config)
    print("\n" + rendered)
    if not shape_gates:
        return
    _, rates = deadlines.acceptance_by_slack(config)
    # "no deadline" (the R_max·Δt ladder alone) admits the most; finite
    # slack is NOT monotone at high load — tight deadlines shed doomed
    # jobs instantly, freeing capacity for later arrivals (see the module
    # docstring) — so the gate only pins the dominant endpoint and that
    # deadlines do bind (some finite slack rejects more than none).
    assert rates[-1] == rates.max()
    assert rates[:-1].min() < rates[-1]


def test_load_sweep_tradeoff(benchmark, config, shape_gates):
    rendered = run_once(benchmark, loadsweep.run, config)
    print("\n" + rendered)
    if not shape_gates:
        return
    points = loadsweep.sweep(config)
    online = {p.load: p for p in points if p.scheduler == "online"}
    batch = {p.load: p for p in points if p.scheduler != "online"}
    loads = sorted(online)
    # waits grow with load under both schedulers
    online_waits = [online[x].mean_wait_h for x in loads]
    batch_waits = [batch[x].mean_wait_h for x in loads]
    assert online_waits[-1] > online_waits[0]
    assert batch_waits[-1] > batch_waits[0]
    # past saturation, batch pays with far longer waits; online pays with
    # a bounded rejection rate
    top = loads[-1]
    assert batch[top].mean_wait_h > online[top].mean_wait_h
    assert online[top].acceptance < 1.0
    assert batch[top].acceptance == 1.0
