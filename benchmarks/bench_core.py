"""Microbenchmarks of the core data structures.

These are conventional pytest-benchmark timings (multiple rounds) of the
operations whose complexity Section 4.3 analyzes: Phase-1/Phase-2
searches, tree updates, and end-to-end scheduling throughput.
"""

import random

from repro.core.calendar import AvailabilityCalendar
from repro.core.coalloc import OnlineCoAllocator
from repro.core.slot_tree import TwoDimTree
from repro.core.types import IdlePeriod, Request


def _periods(n, seed=0):
    rng = random.Random(seed)
    return [
        IdlePeriod(server=i, st=rng.uniform(0, 1000), et=rng.uniform(1000, 2000))
        for i in range(n)
    ]


def _loaded_tree(n):
    tree = TwoDimTree()
    tree.bulk_load(_periods(n))
    return tree


class TestTreeOps:
    def test_bulk_load_512(self, benchmark):
        periods = _periods(512)

        def load():
            t = TwoDimTree()
            t.bulk_load(periods)
            return t

        benchmark(load)

    def test_search_512(self, benchmark):
        tree = _loaded_tree(512)
        benchmark(tree.find_feasible, 500.0, 1500.0, 16)

    def test_insert_remove_512(self, benchmark):
        tree = _loaded_tree(512)
        period = IdlePeriod(server=999, st=500.0, et=1500.0)

        def cycle():
            tree.insert(period)
            tree.remove(period)

        benchmark(cycle)

    def test_range_search_512(self, benchmark):
        tree = _loaded_tree(512)
        benchmark(tree.range_search, 500.0, 1500.0)


class TestSchedulerThroughput:
    def _request_stream(self, n_requests, n_servers, seed=1):
        rng = random.Random(seed)
        t = 0.0
        requests = []
        for i in range(n_requests):
            t += rng.expovariate(1 / 200.0)
            requests.append(
                Request(
                    qr=t,
                    sr=t,
                    lr=rng.uniform(900.0, 7200.0),
                    nr=rng.randint(1, n_servers // 8),
                    rid=i,
                )
            )
        return requests

    def test_online_scheduling_128_servers(self, benchmark):
        requests = self._request_stream(200, 128)

        def run():
            cal = AvailabilityCalendar(128, 900.0, 96)
            alloc = OnlineCoAllocator(cal, delta_t=900.0, r_max=48)
            done = 0
            for req in requests:
                cal.advance(req.qr)
                if alloc.schedule(req) is not None:
                    done += 1
            return done

        assert benchmark(run) > 0

    def test_calendar_rollover(self, benchmark):
        def roll():
            cal = AvailabilityCalendar(128, 900.0, 96)
            cal.advance(96 * 900.0)  # roll the entire horizon once
            return cal

        benchmark(roll)
