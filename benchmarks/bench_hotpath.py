"""Trace-replay benchmark of the online-scheduler hot path.

Replays a synthetic heavy-traffic workload (see
:mod:`repro.workloads.stress`) through :class:`OnlineScheduler`, timing
every admission decision, and writes machine-readable results to
``BENCH_hotpath.json`` at the repository root.  The JSON carries
requests/sec, p50/p99 per-request latency, the workload parameters, and
an ``outcome_checksum`` over every job's schedule — equal checksums
across code revisions prove a speedup changed *nothing* but speed.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full: 100k requests, N=512
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick    # CI smoke: 2k requests, N=128
    PYTHONPATH=src python benchmarks/bench_hotpath.py --profile  # + cProfile attribution

Unlike the pytest-benchmark suites next to it, this is a plain script —
the replay is far too heavy for repeat rounds, and the JSON artifact (not
a pytest report) is the product.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
try:
    import repro  # noqa: F401
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.schedulers.online import OnlineScheduler
from repro.sim.replay import ReplayResult, replay
from repro.workloads.stress import stress_workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=100_000)
    parser.add_argument("--servers", type=int, default=512)
    parser.add_argument("--rho", type=float, default=0.3, help="advance-reservation fraction")
    parser.add_argument("--load", type=float, default=0.9, help="offered load vs capacity")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--tau", type=float, default=900.0)
    parser.add_argument("--q-slots", type=int, default=288)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke scale: 2000 requests on 128 servers (explicit flags still win)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="replay the workload N times and report the median throughput "
        "(single runs on a shared host swing ±10-15%%; medians are what "
        "regression hunts should compare)",
    )
    parser.add_argument(
        "--out",
        default=str(_REPO_ROOT / "BENCH_hotpath.json"),
        help="result JSON path (default: BENCH_hotpath.json at the repo root)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="also run the replay under cProfile and print the hot functions",
    )
    return parser


def run(args: argparse.Namespace) -> dict:
    from repro.core.slot_tree import backend_info

    n_requests = args.requests
    n_servers = args.servers
    if args.quick:
        if n_requests == 100_000:
            n_requests = 2_000
        if n_servers == 512:
            n_servers = 128

    requests = stress_workload(
        n_requests=n_requests,
        n_servers=n_servers,
        rho=args.rho,
        seed=args.seed,
        tau=args.tau,
        load=args.load,
    )
    repeat = max(1, args.repeat)
    results: list[ReplayResult] = []
    for _ in range(repeat):
        scheduler = OnlineScheduler(n_servers=n_servers, tau=args.tau, q_slots=args.q_slots)
        results.append(replay(scheduler, requests))
    checksums = {r.outcome_checksum for r in results}
    if len(checksums) != 1:
        raise AssertionError(f"non-deterministic replay: {sorted(checksums)}")
    # the median run is the record: per-run throughput on a shared host
    # swings far more than any code change under test
    by_throughput = sorted(results, key=lambda r: r.requests_per_sec)
    result = by_throughput[len(results) // 2]

    record = {
        "benchmark": "hotpath-replay",
        "quick": bool(args.quick),
        "backend": backend_info()["backend"],
        "n_servers": n_servers,
        "requests": n_requests,
        "rho": args.rho,
        "load": args.load,
        "tau": args.tau,
        "q_slots": args.q_slots,
        "seed": args.seed,
        "repeats": repeat,
        "elapsed_sec": round(result.elapsed_sec, 4),
        "requests_per_sec": round(result.requests_per_sec, 1),
        "requests_per_sec_all": [round(r.requests_per_sec, 1) for r in results],
        "p50_latency_us": round(result.latency_percentile(50.0), 2),
        "p99_latency_us": round(result.latency_percentile(99.0), 2),
        "accepted": result.accepted,
        "acceptance_rate": round(result.acceptance_rate, 4),
        "mean_attempts": round(result.mean_attempts, 3),
        "outcome_checksum": result.outcome_checksum,
    }
    return record


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    record = run(args)
    out = Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\nwrote {out}")

    if args.profile:
        from repro.schedulers.profile import profile_call

        requests = stress_workload(
            n_requests=record["requests"],
            n_servers=record["n_servers"],
            rho=args.rho,
            seed=args.seed,
            tau=args.tau,
            load=args.load,
        )
        scheduler = OnlineScheduler(
            n_servers=record["n_servers"], tau=args.tau, q_slots=args.q_slots
        )
        report = profile_call(replay, scheduler, requests, record_latencies=False)
        print(report.stats_text(sort="cumulative", limit=25))
    return 0


if __name__ == "__main__":
    sys.exit(main())
