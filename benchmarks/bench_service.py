"""Acceptance benchmark for the reservation service (`repro serve`).

Boots real server subprocesses and replays an SWF-derived trace over TCP
twice:

* **Run A (uninterrupted)** — one server, the full trace, shadow-ledger
  validated end to end.
* **Run B (kill/restart)** — replay the first half, force a snapshot,
  ``SIGKILL`` the server mid-run, restart it from the snapshot, replay
  the second half with the first half's shadow ledger preloaded.

The run passes only if **both** replays finish with zero shadow-ledger
violations **and** run B's accepted-reservation checksum equals run A's
— the virtual clock plus persisted slot-tree tie-break uids make a
restarted server bit-identical to one that never died.  Results land in
``BENCH_service.json`` at the repository root.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_service.py             # full: 10k requests
    PYTHONPATH=src python benchmarks/bench_service.py --jobs 2000 # CI smoke scale

A plain script like ``bench_hotpath.py``: the JSON artifact is the
product, and the subprocess orchestration does not fit pytest-benchmark.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
try:
    import repro  # noqa: F401
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(_REPO_ROOT / "src"))
    import repro  # noqa: F401

_ENV = dict(
    os.environ,
    PYTHONPATH=str(Path(repro.__file__).resolve().parents[1]),
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=10_000, help="requests to replay")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--servers", type=int, default=128, help="system size N")
    parser.add_argument("--tau", type=float, default=900.0)
    parser.add_argument("--q-slots", type=int, default=96)
    parser.add_argument("--window", type=int, default=64, help="loadgen in-flight window")
    parser.add_argument(
        "--out",
        default=str(_REPO_ROOT / "BENCH_service.json"),
        help="result JSON path (default: BENCH_service.json at the repo root)",
    )
    return parser


def start_server(args: argparse.Namespace, snapshot: str | None) -> tuple[subprocess.Popen, int]:
    """Launch ``repro serve`` and parse its ephemeral port off stdout."""
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--servers", str(args.servers),
        "--tau", str(args.tau),
        "--q-slots", str(args.q_slots),
    ]
    if snapshot:
        cmd += ["--snapshot-path", snapshot]
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=_ENV, text=True
    )
    line = proc.stdout.readline()
    if "listening on" not in line:
        proc.kill()
        raise RuntimeError(f"server failed to boot: {line!r}")
    port = int(line.split("listening on ")[1].split()[0].rsplit(":", 1)[1])
    return proc, port


def loadgen(args: argparse.Namespace, port: int, out: Path, **extra: object) -> dict:
    """Run ``repro loadgen`` against ``port`` and return its report."""
    cmd = [
        sys.executable, "-m", "repro.cli", "loadgen",
        "--port", str(port),
        "--swf", extra.pop("swf"),
        "--seed", str(args.seed),
        "--window", str(args.window),
        "--out", str(out),
    ]
    for flag, value in extra.items():
        if value is True:
            cmd.append(f"--{flag.replace('_', '-')}")
        elif value is not None:
            cmd += [f"--{flag.replace('_', '-')}", str(value)]
    completed = subprocess.run(cmd, env=_ENV, capture_output=True, text=True)
    if completed.returncode not in (0, 1):  # 1 = ledger violations, reported below
        raise RuntimeError(
            f"loadgen failed rc={completed.returncode}:\n{completed.stderr}"
        )
    return json.loads(out.read_text())


def rpc(port: int, message: dict) -> dict:
    """One blocking NDJSON request/response (used to force a snapshot)."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall((json.dumps(message) + "\n").encode())
        chunks = b""
        while not chunks.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks += chunk
    return json.loads(chunks)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    work = Path(tempfile.mkdtemp(prefix="bench_service_"))
    trace = work / "trace.swf"

    generate = subprocess.run(
        [sys.executable, "-m", "repro.cli", "generate",
         "--jobs", str(args.jobs), "--seed", str(args.seed), "--out", str(trace)],
        env=_ENV, capture_output=True, text=True,
    )
    if generate.returncode != 0:
        raise RuntimeError(f"trace generation failed:\n{generate.stderr}")

    # ---- run A: uninterrupted ----------------------------------------
    server_a, port_a = start_server(args, snapshot=None)
    t0 = time.perf_counter()
    report_a = loadgen(args, port_a, work / "run_a.json", swf=str(trace), shutdown=True)
    wall_a = time.perf_counter() - t0
    server_a.wait(timeout=30)

    # ---- run B: kill -9 mid-replay, restart from snapshot ------------
    snapshot = str(work / "state.snap")
    half = args.jobs // 2
    server_b, port_b = start_server(args, snapshot=snapshot)
    t0 = time.perf_counter()
    report_b1 = loadgen(
        args, port_b, work / "run_b1.json",
        swf=str(trace), limit=half, ledger_out=str(work / "ledger.json"),
    )
    forced = rpc(port_b, {"op": "snapshot"})
    assert forced.get("ok"), f"snapshot op failed: {forced}"
    server_b.send_signal(signal.SIGKILL)  # no drain, no goodbye
    server_b.wait(timeout=30)

    server_b2, port_b2 = start_server(args, snapshot=snapshot)
    report_b2 = loadgen(
        args, port_b2, work / "run_b2.json",
        swf=str(trace), offset=half, ledger_in=str(work / "ledger.json"),
        shutdown=True,
    )
    wall_b = time.perf_counter() - t0
    server_b2.wait(timeout=30)

    # ---- verdict ------------------------------------------------------
    checksum_a = report_a["accepted_checksum"]
    checksum_b = report_b2["accepted_checksum"]
    violations = (
        report_a["violations_total"]
        + report_b1["violations_total"]
        + report_b2["violations_total"]
    )
    identical = checksum_a == checksum_b
    server_agrees = (
        report_a["server_status"]["accepted_checksum"] == checksum_a
        and report_b2["server_status"]["accepted_checksum"] == checksum_b
    )
    passed = identical and server_agrees and violations == 0

    result = {
        "benchmark": "service",
        "requests": args.jobs,
        "servers": args.servers,
        "tau": args.tau,
        "q_slots": args.q_slots,
        "seed": args.seed,
        "passed": passed,
        "violations_total": violations,
        "checksum_identical_after_kill_restart": identical,
        "server_client_checksums_agree": server_agrees,
        "uninterrupted": {
            "wall_s": round(wall_a, 3),
            "throughput_rps": report_a["throughput_rps"],
            "accepted": report_a["accepted"],
            "rejected": report_a["rejected"],
            "latency_ms": report_a["latency_ms"],
            "accepted_checksum": checksum_a,
        },
        "kill_restart": {
            "wall_s": round(wall_b, 3),
            "killed_after": half,
            "resumed_with_ledger_entries": report_b2["config"]["preloaded_ledger_entries"],
            "accepted": report_b1["accepted"] + report_b2["accepted"],
            "resent": report_b1["resent"] + report_b2["resent"],
            "accepted_checksum": checksum_b,
        },
    }
    out = Path(args.out)
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    print(
        f"bench_service: {args.jobs} requests over TCP — "
        f"A {report_a['throughput_rps']} req/s, "
        f"checksums A={checksum_a} B={checksum_b}, "
        f"{violations} violation(s) -> {'PASS' if passed else 'FAIL'} ({out})"
    )
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
