"""Acceptance benchmark for the reservation service (`repro serve`).

Boots real server subprocesses and replays an SWF-derived trace over TCP
twice:

* **Run A (uninterrupted)** — one server, the full trace, shadow-ledger
  validated end to end.
* **Run B (kill/restart)** — replay the first half, force a snapshot,
  ``SIGKILL`` the server mid-run, restart it from the snapshot, replay
  the second half with the first half's shadow ledger preloaded.

With ``--shards K`` (default 4) two sharded runs follow:

* **Run C (sharded, uninterrupted)** — the same trace against
  ``repro serve --shards K``; its accepted checksum must equal run A's
  (sharded and single-calendar decisions are bit-identical), and its
  throughput yields the ``speedup_vs_single`` figure.
* **Run D (kill one shard)** — replay the first half, force a
  coordinated snapshot, ``SIGKILL`` one calendar-shard subprocess; the
  service must crash-stop (exit 1, snapshot untouched).  A coordinated
  restart from the snapshot replays the second half; the final checksum
  must again equal run A's.

Every replay must finish with zero shadow-ledger violations and all
checksums must agree — the virtual clock plus persisted slot-tree
tie-break uids make a restarted (or re-sharded) server bit-identical to
one that never died.  The K-vs-1 throughput gate (≥ 1.5x) only applies
when the host has at least ``shards + 2`` CPUs; smaller hosts record
the ratio without failing on it.  Results land in
``BENCH_service.json`` at the repository root.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_service.py             # full: 10k requests
    PYTHONPATH=src python benchmarks/bench_service.py --jobs 2000 # CI smoke scale

A plain script like ``bench_hotpath.py``: the JSON artifact is the
product, and the subprocess orchestration does not fit pytest-benchmark.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
try:
    import repro  # noqa: F401
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(_REPO_ROOT / "src"))
    import repro  # noqa: F401

_ENV = dict(
    os.environ,
    PYTHONPATH=str(Path(repro.__file__).resolve().parents[1]),
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=10_000, help="requests to replay")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--servers", type=int, default=128, help="system size N")
    parser.add_argument("--tau", type=float, default=900.0)
    parser.add_argument("--q-slots", type=int, default=96)
    parser.add_argument("--window", type=int, default=64, help="loadgen in-flight window")
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="calendar shards for the sharded runs (1 disables them)",
    )
    parser.add_argument(
        "--out",
        default=str(_REPO_ROOT / "BENCH_service.json"),
        help="result JSON path (default: BENCH_service.json at the repo root)",
    )
    return parser


def start_server(
    args: argparse.Namespace, snapshot: str | None, shards: int = 0
) -> tuple[subprocess.Popen, int]:
    """Launch ``repro serve`` and parse its ephemeral port off stdout."""
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--servers", str(args.servers),
        "--tau", str(args.tau),
        "--q-slots", str(args.q_slots),
    ]
    if snapshot:
        cmd += ["--snapshot-path", snapshot]
    if shards > 1:
        cmd += ["--shards", str(shards)]
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=_ENV, text=True
    )
    line = proc.stdout.readline()
    if "listening on" not in line:
        proc.kill()
        raise RuntimeError(f"server failed to boot: {line!r}")
    port = int(line.split("listening on ")[1].split()[0].rsplit(":", 1)[1])
    return proc, port


def loadgen(args: argparse.Namespace, port: int, out: Path, **extra: object) -> dict:
    """Run ``repro loadgen`` against ``port`` and return its report."""
    cmd = [
        sys.executable, "-m", "repro.cli", "loadgen",
        "--port", str(port),
        "--swf", extra.pop("swf"),
        "--seed", str(args.seed),
        "--window", str(args.window),
        "--out", str(out),
    ]
    for flag, value in extra.items():
        if value is True:
            cmd.append(f"--{flag.replace('_', '-')}")
        elif value is not None:
            cmd += [f"--{flag.replace('_', '-')}", str(value)]
    completed = subprocess.run(cmd, env=_ENV, capture_output=True, text=True)
    if completed.returncode not in (0, 1):  # 1 = ledger violations, reported below
        raise RuntimeError(
            f"loadgen failed rc={completed.returncode}:\n{completed.stderr}"
        )
    if not out.exists():
        # rc 1 is also Python's uncaught-exception code: a loadgen that
        # died before writing its report is a crash, not a ledger verdict
        raise RuntimeError(
            f"loadgen wrote no report (rc={completed.returncode}):\n{completed.stderr}"
        )
    return json.loads(out.read_text())


def rpc(port: int, message: dict) -> dict:
    """One blocking NDJSON request/response (used to force a snapshot)."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall((json.dumps(message) + "\n").encode())
        chunks = b""
        while not chunks.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks += chunk
    return json.loads(chunks)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    work = Path(tempfile.mkdtemp(prefix="bench_service_"))
    trace = work / "trace.swf"

    generate = subprocess.run(
        [sys.executable, "-m", "repro.cli", "generate",
         "--jobs", str(args.jobs), "--seed", str(args.seed), "--out", str(trace)],
        env=_ENV, capture_output=True, text=True,
    )
    if generate.returncode != 0:
        raise RuntimeError(f"trace generation failed:\n{generate.stderr}")

    # ---- run A: uninterrupted ----------------------------------------
    server_a, port_a = start_server(args, snapshot=None)
    t0 = time.perf_counter()
    report_a = loadgen(args, port_a, work / "run_a.json", swf=str(trace), shutdown=True)
    wall_a = time.perf_counter() - t0
    server_a.wait(timeout=30)

    # ---- run B: kill -9 mid-replay, restart from snapshot ------------
    snapshot = str(work / "state.snap")
    half = args.jobs // 2
    server_b, port_b = start_server(args, snapshot=snapshot)
    t0 = time.perf_counter()
    report_b1 = loadgen(
        args, port_b, work / "run_b1.json",
        swf=str(trace), limit=half, ledger_out=str(work / "ledger.json"),
    )
    forced = rpc(port_b, {"op": "snapshot"})
    assert forced.get("ok"), f"snapshot op failed: {forced}"
    server_b.send_signal(signal.SIGKILL)  # no drain, no goodbye
    server_b.wait(timeout=30)

    server_b2, port_b2 = start_server(args, snapshot=snapshot)
    report_b2 = loadgen(
        args, port_b2, work / "run_b2.json",
        swf=str(trace), offset=half, ledger_in=str(work / "ledger.json"),
        shutdown=True,
    )
    wall_b = time.perf_counter() - t0
    server_b2.wait(timeout=30)

    # ---- runs C/D: K calendar shards ---------------------------------
    sharded_ok = True
    sharded_result = None
    if args.shards > 1:
        # run C: sharded, uninterrupted
        server_c, port_c = start_server(args, snapshot=None, shards=args.shards)
        t0 = time.perf_counter()
        report_c = loadgen(
            args, port_c, work / "run_c.json", swf=str(trace), shutdown=True
        )
        wall_c = time.perf_counter() - t0
        server_c.wait(timeout=30)

        # run D: SIGKILL one shard after the snapshot, coordinated restart
        snapshot_d = str(work / "state_sharded.snap")
        server_d, port_d = start_server(args, snapshot=snapshot_d, shards=args.shards)
        report_d1 = loadgen(
            args, port_d, work / "run_d1.json",
            swf=str(trace), limit=half, ledger_out=str(work / "ledger_d.json"),
        )
        forced_d = rpc(port_d, {"op": "snapshot"})
        assert forced_d.get("ok"), f"coordinated snapshot failed: {forced_d}"
        victim = int(rpc(port_d, {"op": "status"})["shards"]["pids"][0])
        os.kill(victim, signal.SIGKILL)
        try:
            # force a scatter onto the dead shard: the service must answer
            # INTERNAL (or drop the line) and crash-stop with exit code 1
            poke = rpc(port_d, {"op": "probe", "ta": 0.0, "tb": 1.0, "limit": 1})
            crash_stop = not poke.get("ok")
        except (OSError, json.JSONDecodeError):
            crash_stop = True
        server_d.wait(timeout=30)
        crash_stop = crash_stop and server_d.returncode not in (0, None)

        server_d2, port_d2 = start_server(args, snapshot=snapshot_d, shards=args.shards)
        report_d2 = loadgen(
            args, port_d2, work / "run_d2.json",
            swf=str(trace), offset=half, ledger_in=str(work / "ledger_d.json"),
            shutdown=True,
        )
        server_d2.wait(timeout=30)

        cpu_count = os.cpu_count() or 1
        speedup = (
            report_c["throughput_rps"] / report_a["throughput_rps"]
            if report_a["throughput_rps"]
            else 0.0
        )
        speedup_gated = cpu_count >= args.shards + 2
        checksum_c = report_c["accepted_checksum"]
        checksum_d = report_d2["accepted_checksum"]
        sharded_violations = (
            report_c["violations_total"]
            + report_d1["violations_total"]
            + report_d2["violations_total"]
        )
        sharded_ok = (
            checksum_c == report_a["accepted_checksum"]
            and checksum_d == report_a["accepted_checksum"]
            and sharded_violations == 0
            and crash_stop
            and (speedup >= 1.5 or not speedup_gated)
        )
        sharded_result = {
            "uninterrupted": {
                "wall_s": round(wall_c, 3),
                "throughput_rps": report_c["throughput_rps"],
                "accepted": report_c["accepted"],
                "latency_ms": report_c["latency_ms"],
                "accepted_checksum": checksum_c,
            },
            "kill_one_shard": {
                "killed_after": half,
                "crash_stop_observed": crash_stop,
                "service_exit_code": server_d.returncode,
                "resumed_with_ledger_entries": report_d2["config"][
                    "preloaded_ledger_entries"
                ],
                "accepted": report_d1["accepted"] + report_d2["accepted"],
                "accepted_checksum": checksum_d,
            },
            "violations_total": sharded_violations,
            "speedup_vs_single": round(speedup, 3),
            "speedup_gate_applied": speedup_gated,
        }

    # ---- verdict ------------------------------------------------------
    checksum_a = report_a["accepted_checksum"]
    checksum_b = report_b2["accepted_checksum"]
    violations = (
        report_a["violations_total"]
        + report_b1["violations_total"]
        + report_b2["violations_total"]
    )
    identical = checksum_a == checksum_b
    server_agrees = (
        report_a["server_status"]["accepted_checksum"] == checksum_a
        and report_b2["server_status"]["accepted_checksum"] == checksum_b
    )
    passed = identical and server_agrees and violations == 0 and sharded_ok

    result = {
        "benchmark": "service",
        "requests": args.jobs,
        "servers": args.servers,
        "tau": args.tau,
        "q_slots": args.q_slots,
        "seed": args.seed,
        "shards": args.shards,
        "cpu_count": os.cpu_count(),
        "passed": passed,
        "violations_total": violations,
        "checksum_identical_after_kill_restart": identical,
        "server_client_checksums_agree": server_agrees,
        "uninterrupted": {
            "wall_s": round(wall_a, 3),
            "throughput_rps": report_a["throughput_rps"],
            "accepted": report_a["accepted"],
            "rejected": report_a["rejected"],
            "latency_ms": report_a["latency_ms"],
            "accepted_checksum": checksum_a,
        },
        "kill_restart": {
            "wall_s": round(wall_b, 3),
            "killed_after": half,
            "resumed_with_ledger_entries": report_b2["config"]["preloaded_ledger_entries"],
            "accepted": report_b1["accepted"] + report_b2["accepted"],
            "resent": report_b1["resent"] + report_b2["resent"],
            "accepted_checksum": checksum_b,
        },
    }
    if sharded_result is not None:
        result["sharded"] = sharded_result
    out = Path(args.out)
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    sharded_note = ""
    if sharded_result is not None:
        sharded_note = (
            f", shards={args.shards} C={sharded_result['uninterrupted']['accepted_checksum']} "
            f"D={sharded_result['kill_one_shard']['accepted_checksum']} "
            f"speedup={sharded_result['speedup_vs_single']}x"
            f"{' (gated)' if sharded_result['speedup_gate_applied'] else ' (recorded)'}"
        )
    print(
        f"bench_service: {args.jobs} requests over TCP — "
        f"A {report_a['throughput_rps']} req/s, "
        f"checksums A={checksum_a} B={checksum_b}{sharded_note}, "
        f"{violations} violation(s) -> {'PASS' if passed else 'FAIL'} ({out})"
    )
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
