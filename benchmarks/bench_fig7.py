"""Bench F7 — Figure 7: average wait and operation counts vs ρ.

Shape assertions (paper Section 5.2): (a) the average waiting time grows
with the advance-reservation fraction for every workload; (b) the number
of operations per request stays roughly flat — the algorithm scales with
ρ (the paper's curves move well under 2x across the whole range).
"""

from repro.experiments import fig7

from .conftest import run_once


def test_fig7_scalability_vs_rho(benchmark, config, shape_gates):
    rendered = run_once(benchmark, fig7.run, config)
    print("\n" + rendered)

    if not shape_gates:
        return
    rhos, wait_curves = fig7.waiting_series(config)
    for workload, waits in wait_curves.items():
        assert waits[-1] > waits[0], f"{workload}: waits did not grow with rho"
        # growth is dominated by the ~1.5h mean lead time, not pathology:
        # rho=1 adds at most the max lead (3h) over rho=0
        assert waits[-1] - waits[0] < 3.5 * 3600.0, f"{workload}: wait growth exceeds lead"

    _, op_curves = fig7.ops_series(config)
    for workload, ops in op_curves.items():
        lo, hi = min(ops), max(ops)
        assert hi < 3.0 * max(lo, 1.0), (
            f"{workload}: operations vary {hi / max(lo, 1.0):.1f}x across rho — not flat"
        )
    benchmark.extra_info["figure"] = rendered
