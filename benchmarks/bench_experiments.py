"""Sequential vs parallel vs warm-cache benchmark of the experiment suite.

Enumerates the distinct simulations the paper's tables and figures need
(deduplicated by content address), then times three passes:

1. **sequential cold** — every run computed in-process, one after the
   other (the pre-store behaviour);
2. **parallel cold** — the same runs fanned out over ``--workers``
   processes into a disk-backed store;
3. **warm** — a fresh process-equivalent pass against the populated
   disk cache (every run a cache hit).

Per-run record checksums are compared across the three passes — the
speedup is only valid if the results are bit-identical — and everything
is written to ``BENCH_experiments.json`` at the repository root.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_experiments.py             # default scale, 4 workers
    PYTHONPATH=src python benchmarks/bench_experiments.py --quick     # CI smoke: tiny scale, 2 workers

Like ``bench_hotpath.py`` this is a plain script, not a pytest-benchmark
suite: the runs are far too heavy for repeat rounds and the JSON
artifact is the product.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
try:
    import repro  # noqa: F401
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.parallel import ARTIFACTS, enumerate_runs, warm_store
from repro.experiments.store import ResultStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=("smoke", "default", "full"), default="default"
    )
    parser.add_argument("--jobs", type=int, default=None, help="override the scale's n_jobs")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--artifacts",
        nargs="*",
        default=list(ARTIFACTS),
        choices=list(ARTIFACTS),
        help="artifacts whose runs to benchmark (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: 300-job runs, 2 workers (explicit flags still win)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="reuse this store for the parallel/warm passes "
        "(default: a throwaway temp dir)",
    )
    parser.add_argument(
        "--out",
        default=str(_REPO_ROOT / "BENCH_experiments.json"),
        help="result JSON path (default: BENCH_experiments.json at the repo root)",
    )
    return parser


def run(args: argparse.Namespace) -> dict:
    config: ExperimentConfig = SCALES[args.scale]
    workers = args.workers
    if args.quick:
        if args.jobs is None and args.scale == "default":
            config = ExperimentConfig(n_jobs=300)
        if workers == 4:
            workers = 2
    if args.jobs is not None:
        config = ExperimentConfig(n_jobs=args.jobs)

    specs = enumerate_runs(args.artifacts, config)
    say = lambda line: print(line, file=sys.stderr)  # noqa: E731

    say(f"== sequential cold pass: {len(specs)} distinct runs ==")
    # cache_dir="" = memory-only, ignoring $REPRO_CACHE_DIR: the baseline
    # must not read a previously-populated disk cache
    sequential = warm_store(specs, workers=1, store=ResultStore(cache_dir=""), progress=say)

    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = args.cache_dir or tmp
        say(f"== parallel cold pass: {workers} workers, cache {cache_dir} ==")
        parallel = warm_store(
            specs, workers=workers, store=ResultStore(cache_dir), progress=say
        )
        say("== warm pass: fresh store over the populated cache ==")
        warm = warm_store(
            specs, workers=workers, store=ResultStore(cache_dir), progress=say
        )

    checksums_identical = (
        sequential.checksums == parallel.checksums == warm.checksums
        and len(sequential.checksums) == len(specs)
    )
    speedup = sequential.elapsed_sec / parallel.elapsed_sec if parallel.elapsed_sec else 0.0
    warm_speedup = parallel.elapsed_sec / warm.elapsed_sec if warm.elapsed_sec else 0.0

    record = {
        "benchmark": "experiments-parallel-store",
        "quick": bool(args.quick),
        "artifacts": list(args.artifacts),
        "n_jobs": config.n_jobs,
        "distinct_runs": len(specs),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "sequential_sec": round(sequential.elapsed_sec, 3),
        "parallel_sec": round(parallel.elapsed_sec, 3),
        "warm_sec": round(warm.elapsed_sec, 3),
        "parallel_speedup": round(speedup, 2),
        "warm_speedup_vs_parallel_cold": round(warm_speedup, 1),
        "checksums_identical": checksums_identical,
        "failed_runs": len(sequential.failures) + len(parallel.failures) + len(warm.failures),
        "checksums": sequential.checksums,
    }
    return record


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    record = run(args)
    out = Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps({k: v for k, v in record.items() if k != "checksums"}, indent=2))
    print(f"\nwrote {out}")
    return 0 if record["checksums_identical"] and not record["failed_runs"] else 1


if __name__ == "__main__":
    sys.exit(main())
