"""Bench F6 — Figure 6: waiting-time distribution vs reservation fraction ρ.

Shape assertions (paper Section 5.2): as ρ grows, probability mass moves
into the [0, 3 h] band (the reservation lead window) — visible as a drop
in the zero-wait bin and growth around the 3-hour peak — while the far
tail does not grow.
"""

import numpy as np

from repro.experiments import fig6

from .conftest import run_once


def test_fig6_waiting_vs_rho(benchmark, config, shape_gates):
    rendered = run_once(benchmark, fig6.run, config)
    print("\n" + rendered)
    if not shape_gates:
        return
    for workload in ("CTC", "KTH"):
        lefts, curves = fig6.series(workload, config)
        zero_bin = [curves[f"{workload}-rho={r:g}"][0] for r in fig6.RHOS]
        # the instant-start mass shrinks monotonically-ish with rho
        assert zero_bin[0] > zero_bin[-1], f"{workload}: zero-wait mass did not shrink"
        # mass within the 0-3h lead band grows with rho
        band = (lefts >= 1.0) & (lefts < 4.0)
        band_mass = [float(curves[f"{workload}-rho={r:g}"][band].sum()) for r in fig6.RHOS]
        assert band_mass[-1] > band_mass[0], f"{workload}: no 3-hour peak appears"
        # tails stay put: mass beyond 6h varies little across rho
        tail = lefts >= 6.0
        tail_mass = [float(curves[f"{workload}-rho={r:g}"][tail].sum()) for r in fig6.RHOS]
        assert max(tail_mass) - min(tail_mass) < 0.15, f"{workload}: tail moved with rho"
    benchmark.extra_info["figure"] = rendered
