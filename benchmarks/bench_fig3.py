"""Bench F3 — Figure 3: temporal penalty vs temporal size (KTH).

Shape assertions: the batch scheduler must penalize short jobs more than
the online co-allocator (the paper reports an order of magnitude; our
EASY comparator is a stronger baseline than the 2009 production
schedulers, so the gate is conservative), and both curves must show the
penalty *decreasing* with job duration overall.
"""

import numpy as np

from repro.experiments import fig3

from .conftest import run_once


def test_fig3_temporal_penalty(benchmark, config, shape_gates):
    rendered = run_once(benchmark, fig3.run, config)
    print("\n" + rendered)
    if not shape_gates:
        return
    lefts, curves = fig3.series(config)
    online, batch = curves["KTH-online"], curves["KTH-batch"]
    small = lefts < 2.0
    # batch hurts small jobs more than online
    assert np.nanmean(batch[small]) > np.nanmean(online[small])
    # penalty decays with duration under both schedulers
    for curve in (online, batch):
        head = np.nanmean(curve[lefts < 2.0])
        tail = np.nanmean(curve[(lefts >= 8.0)])
        assert head > tail
    benchmark.extra_info["figure"] = rendered
