"""Bench T2 — Table 2: scheduling attempts vs spatial size.

Shape assertions: attempts grow with ``n_r`` for both workloads, and
KTH — the fragmented short-job workload — needs more attempts than CTC
in the common small-size group (paper: 10.27 vs 2.96 for (0:50]).
"""

from repro.experiments import table2

from .conftest import run_once


def test_table2_attempts_by_spatial_size(benchmark, config, shape_gates):
    rendered = run_once(benchmark, table2.run, config)
    print("\n" + rendered)
    if not shape_gates:
        return
    data = table2.rows(config)
    for workload, table in data.items():
        values = [table[g] for g in sorted(table)]
        assert len(values) >= 2, f"{workload}: need at least two size groups"
        # growth with spatial size: widest group needs more attempts than
        # the narrowest (intermediate bins may be noisy at small scale)
        assert values[-1] > values[0], f"{workload}: attempts do not grow with n_r"
    # KTH's short-job fragmentation shows in the size range where a job
    # needs a substantial fraction of its (much smaller) machine — the
    # (50:100] group, where the paper reports 60 (KTH) vs 5.34 (CTC).
    # The (0:50] group is not comparable across machines: 50 processors
    # is 39% of KTH but 10% of CTC.
    mid = (50, 100)
    assert data["KTH"][mid] > data["CTC"][mid], (
        "KTH (fragmented) should need more attempts than CTC in (50:100]"
    )
    benchmark.extra_info["table"] = rendered
