"""Benchmark configuration.

The experiment benchmarks replay simulations; each regenerates one paper
table/figure and attaches the rendered text to the benchmark record
(``benchmark.extra_info``) while timing the run.  Scale via::

    REPRO_SCALE=smoke  pytest benchmarks/ --benchmark-only   # seconds
    REPRO_SCALE=bench  pytest benchmarks/ --benchmark-only   # default
    REPRO_SCALE=full   pytest benchmarks/ --benchmark-only   # paper sizes

Simulation results are memoized per process (see
``repro.experiments.runner``), so benchmarks that share runs — e.g. every
Figure 3/4/5/Table 2 bench consumes the same CTC/KTH simulations — pay
for them once; the timed number for each bench is the marginal cost of
regenerating its artifact.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig

_SCALES = {
    "smoke": ExperimentConfig(n_jobs=400),
    "bench": ExperimentConfig(n_jobs=1500),
    "full": ExperimentConfig(n_jobs=None),
}


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    scale = os.environ.get("REPRO_SCALE", "bench")
    try:
        return _SCALES[scale]
    except KeyError:
        raise pytest.UsageError(
            f"REPRO_SCALE={scale!r} unknown; choose from {sorted(_SCALES)}"
        ) from None


@pytest.fixture(scope="session")
def shape_gates(config) -> bool:
    """The paper-shape assertions need enough jobs for stable statistics;
    at smoke scale the benches only exercise the plumbing and timing."""
    return config.n_jobs is None or config.n_jobs >= 1000


def run_once(benchmark, fn, *args, **kwargs):
    """Time one execution (simulations are too heavy for repeat rounds)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
