"""Ablations of the design choices DESIGN.md calls out (beyond the paper).

* tree vs linear-scan allocator — the headline complexity claim: the
  slotted 2-D tree search must beat the naive per-server scan as the
  system grows;
* Δt — smaller retry increments find starts sooner at the cost of more
  attempts (the tuning trade-off Section 4.2 describes);
* R_max — more attempts convert rejections into delayed placements.
"""

import random

import numpy as np

from repro.core.calendar import AvailabilityCalendar
from repro.core.coalloc import OnlineCoAllocator
from repro.core.linear import LinearScanAllocator
from repro.core.types import Request
from repro.metrics.report import format_table

from .conftest import run_once


def _stream(n_requests, n_servers, seed=3):
    rng = random.Random(seed)
    t = 0.0
    out = []
    for i in range(n_requests):
        t += rng.expovariate(1 / 120.0)
        out.append(
            Request(
                qr=t,
                sr=t,
                lr=rng.uniform(900.0, 10800.0),
                nr=rng.randint(1, max(2, n_servers // 6)),
                rid=i,
            )
        )
    return out


def _drive_tree(requests, n_servers, tau=900.0, q=96, delta_t=900.0, r_max=48):
    cal = AvailabilityCalendar(n_servers, tau, q)
    alloc = OnlineCoAllocator(cal, delta_t=delta_t, r_max=r_max)
    outcomes = []
    for req in requests:
        cal.advance(req.qr)
        outcomes.append(alloc.schedule(req))
    return outcomes


def _drive_linear(requests, n_servers, tau=900.0, q=96, delta_t=900.0, r_max=48):
    lin = LinearScanAllocator(n_servers, delta_t=delta_t, r_max=r_max, horizon=q * tau)
    outcomes = []
    for req in requests:
        lin.advance(req.qr)
        outcomes.append(lin.schedule(req))
    return outcomes


class TestTreeVsLinear:
    """The data structure earns its keep as N grows."""

    def test_tree_allocator_512(self, benchmark):
        requests = _stream(300, 512)
        benchmark.pedantic(_drive_tree, args=(requests, 512), rounds=1, iterations=1)

    def test_linear_allocator_512(self, benchmark):
        requests = _stream(300, 512)
        benchmark.pedantic(_drive_linear, args=(requests, 512), rounds=1, iterations=1)


class TestTailVsDenseIndexing:
    """What the tail index saves over the paper's literal layout.

    Dense mode registers every unbounded trailing period in all Q slot
    trees, paying the full O(n_r · Q · log² N) update bound on every
    carve; the tail index collapses that to O(log N).  Feasibility
    semantics are identical (property-tested), so this is a pure
    constant/asymptotic ablation.
    """

    def _drive(self, indexing, requests, n_servers=64):
        cal = AvailabilityCalendar(n_servers, 900.0, 96, indexing=indexing)
        alloc = OnlineCoAllocator(cal, delta_t=900.0, r_max=48)
        granted = 0
        for req in requests:
            cal.advance(req.qr)
            if alloc.schedule(req) is not None:
                granted += 1
        return granted

    def test_tail_indexing(self, benchmark):
        requests = _stream(250, 64, seed=9)
        granted = benchmark.pedantic(
            self._drive, args=("tail", requests), rounds=1, iterations=1
        )
        assert granted > 0

    def test_dense_indexing(self, benchmark):
        requests = _stream(250, 64, seed=9)
        granted = benchmark.pedantic(
            self._drive, args=("dense", requests), rounds=1, iterations=1
        )
        assert granted > 0


class TestDeltaTSweep:
    def test_delta_t_tradeoff(self, benchmark, config):
        """Smaller Δt -> earlier starts but more scheduling attempts."""

        def sweep():
            requests = _stream(250, 32, seed=5)
            rows = []
            for delta_t in (450.0, 900.0, 1800.0, 3600.0):
                # equalize the delay *budget* R_max·Δt so only the rung
                # granularity varies
                outcomes = _drive_tree(
                    requests, 32, delta_t=delta_t, r_max=int(48 * 900 / delta_t)
                )
                granted = [a for a in outcomes if a is not None]
                delayed = [a for a in granted if a.attempts > 1]
                rows.append(
                    (
                        delta_t,
                        float(np.mean([a.delay for a in granted])),
                        float(np.mean([a.attempts for a in granted])),
                        len(granted) / len(outcomes),
                        [a.delay for a in delayed],
                    )
                )
            return rows

        rows = run_once(benchmark, sweep)
        print(
            "\n"
            + format_table(
                ["delta_t (s)", "mean delay (s)", "mean attempts", "accepted"],
                [r[:4] for r in rows],
                title="Ablation: retry increment Δt",
            )
        )
        # semantic gate: every scheduler-added delay is a multiple of Δt
        # (modulo float addition noise: base + k·Δt − base ≈ k·Δt)
        for delta_t, _, _, _, delays in rows:
            for d in delays:
                off = d % delta_t
                assert min(off, delta_t - off) < 1e-6, (
                    f"delay {d} off the Δt={delta_t} grid"
                )
        # finer rungs need more attempts per (delayed) placement
        attempts = [r[2] for r in rows]
        assert attempts[0] >= attempts[-1], "finer Δt should cost more attempts"


class TestTauSweep:
    def test_slot_size_tradeoff(self, benchmark, config):
        """Slot size τ trades tree count against tree size.

        With the horizon H fixed, smaller τ means more, smaller slot
        trees (cheaper searches, more registrations per idle period);
        larger τ means fewer, fatter trees.  Acceptance should be
        essentially τ-independent — τ is an indexing choice, not a
        policy — while the op count shifts.
        """

        def sweep():
            horizon = 96 * 900.0
            requests = _stream(250, 32, seed=7)
            rows = []
            for tau in (450.0, 900.0, 1800.0, 3600.0):
                q = int(horizon / tau)
                outcomes = _drive_tree(requests, 32, tau=tau, q=q, delta_t=900.0, r_max=48)
                granted = [a for a in outcomes if a is not None]
                rows.append((tau, q, len(granted) / len(outcomes)))
            return rows

        rows = run_once(benchmark, sweep)
        print(
            "\n"
            + format_table(
                ["tau (s)", "Q", "accepted"], rows, title="Ablation: slot size τ", precision=3
            )
        )
        acceptance = [r[2] for r in rows]
        assert max(acceptance) - min(acceptance) < 0.1, "τ changed admission policy"


class TestReclamation:
    def test_reclamation_benefit(self, benchmark, config, shape_gates):
        """Extension ablation: early-completion reclamation under
        overestimated runtimes recovers waiting time and acceptance."""
        from repro.schedulers import OnlineScheduler
        from repro.sim.driver import run_simulation
        from repro.workloads.archive import generate_workload
        from repro.workloads.models import EstimateAccuracy

        n_jobs = min(config.n_jobs or 1500, 1500)
        requests = generate_workload(
            "KTH", n_jobs=n_jobs, seed=13, accuracy=EstimateAccuracy(p_exact=0.1)
        )

        def run_pair():
            plain = run_simulation(
                OnlineScheduler(n_servers=128, tau=900.0, q_slots=288), list(requests)
            )
            reclaiming = run_simulation(
                OnlineScheduler(n_servers=128, tau=900.0, q_slots=288, reclaim_early=True),
                list(requests),
            )
            return plain, reclaiming

        plain, reclaiming = run_once(benchmark, run_pair)
        mean = lambda res: float(  # noqa: E731
            np.mean([r.waiting_time for r in res.accepted]) if res.accepted else 0.0
        )
        print(
            "\nAblation: early-completion reclamation (KTH, overestimated runtimes)\n"
            f"  plain:      mean wait {mean(plain) / 3600.0:.2f} h, "
            f"accepted {plain.acceptance_rate:.1%}\n"
            f"  reclaiming: mean wait {mean(reclaiming) / 3600.0:.2f} h, "
            f"accepted {reclaiming.acceptance_rate:.1%}"
        )
        if shape_gates:
            assert mean(reclaiming) <= mean(plain)
            assert reclaiming.acceptance_rate >= plain.acceptance_rate


class TestRMaxSweep:
    def test_r_max_acceptance(self, benchmark, config):
        """More attempts convert rejections into (delayed) placements."""

        def sweep():
            requests = _stream(300, 16, seed=6)
            rows = []
            for r_max in (2, 8, 24, 48):
                outcomes = _drive_tree(requests, 16, r_max=r_max)
                granted = [a for a in outcomes if a is not None]
                rows.append((r_max, len(granted) / len(outcomes)))
            return rows

        rows = run_once(benchmark, sweep)
        print(
            "\n"
            + format_table(
                ["R_max", "accepted"], rows, title="Ablation: attempt budget R_max", precision=3
            )
        )
        acceptance = [r[1] for r in rows]
        assert acceptance == sorted(acceptance), "acceptance must grow with R_max"
