"""Bench F5 — Figure 5: average waiting time vs job spatial size.

Shape assertions: waiting time grows with spatial size under both
schedulers, and the online algorithm's overall average sits below the
batch scheduler's (its horizon-wide look-ahead packs wide jobs instead
of queueing them).
"""

import numpy as np

from repro.experiments import fig5

from .conftest import run_once


def _clean(values):
    return values[~np.isnan(values)]


def test_fig5_wait_vs_spatial_size(benchmark, config, shape_gates):
    rendered = run_once(benchmark, fig5.run, config)
    print("\n" + rendered)
    if not shape_gates:
        return
    for workload in ("CTC", "KTH"):
        lefts, curves = fig5.series(workload, config)
        online = curves[f"{workload}-online"]
        batch = curves[f"{workload}-batch"]
        # growth: wide jobs wait longer than narrow ones under both
        for curve in (online, batch):
            vals = _clean(curve)
            assert vals[-1] > vals[0], f"{workload}: no growth with spatial size"
        # online is the cheaper scheduler on average across size bins
        both = ~(np.isnan(online) | np.isnan(batch))
        assert np.mean(online[both]) < np.mean(batch[both]), (
            f"{workload}: online waits not below batch"
        )
    benchmark.extra_info["figure"] = rendered
