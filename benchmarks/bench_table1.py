"""Bench T1 — regenerate Table 1 (workload features) and verify it.

Checks, not just prints: processor/job columns must equal the paper's and
the measured mean durations must match within calibration tolerance.
"""

import pytest

from repro.experiments import table1

from .conftest import run_once


def test_table1_workload_features(benchmark, config, shape_gates):
    rendered = run_once(benchmark, table1.run, config)
    print("\n" + rendered)
    measured = {name: (procs, avg) for name, procs, _, avg in table1.rows(config)}
    for name, (paper_procs, _, paper_avg) in table1.PAPER_ROWS.items():
        procs, avg = measured[name]
        assert procs == paper_procs
        if shape_gates:
            assert avg == pytest.approx(paper_avg, rel=0.15)
    benchmark.extra_info["table"] = rendered
