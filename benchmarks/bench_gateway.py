"""Acceptance benchmark for the HTTP front door (`repro gateway`).

Boots real subprocesses and replays an SWF-derived trace through the
gateway twice:

* **Run A (uninterrupted)** — ``repro serve`` behind ``repro gateway``,
  the full trace over HTTP (``repro loadgen --transport http``),
  shadow-ledger validated end to end, plus a ``/metrics`` scrape whose
  request counter must equal the number of requests sent.
* **Run B (kill-promote)** — the primary runs with a decision log and a
  ``repro follow`` warm standby tails it.  Replay the first half over
  HTTP, ``SIGKILL`` the primary (no snapshot, no drain), ``repro
  promote`` the follower, front the promoted service with a fresh
  gateway, and replay the second half with the first half's ledger
  preloaded.  The final checksum must equal run A's: failover through
  the replication path is decision-identical to a server that never
  died.

Both replays must finish with zero shadow-ledger violations.  Results
land in ``BENCH_gateway.json`` at the repository root.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_gateway.py             # full: 10k requests
    PYTHONPATH=src python benchmarks/bench_gateway.py --jobs 2000 # CI smoke scale

A plain script like ``bench_service.py``: the JSON artifact is the
product, and the subprocess orchestration does not fit pytest-benchmark.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
try:
    import repro  # noqa: F401
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(_REPO_ROOT / "src"))
    import repro  # noqa: F401

_ENV = dict(
    os.environ,
    PYTHONPATH=str(Path(repro.__file__).resolve().parents[1]),
)

_READY = re.compile(r"listening on [0-9.]+:(\d+)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=10_000, help="requests to replay")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--servers", type=int, default=128, help="system size N")
    parser.add_argument("--tau", type=float, default=900.0)
    parser.add_argument("--q-slots", type=int, default=96)
    parser.add_argument("--window", type=int, default=64, help="loadgen in-flight window")
    parser.add_argument(
        "--out",
        default=str(_REPO_ROOT / "BENCH_gateway.json"),
        help="result JSON path (default: BENCH_gateway.json at the repo root)",
    )
    return parser


def spawn_ready(cmd: list[str]) -> tuple[subprocess.Popen, int]:
    """Launch a repro subcommand and parse its ephemeral port off stdout."""
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=_ENV, text=True
    )
    line = proc.stdout.readline()
    match = _READY.search(line or "")
    if match is None:
        proc.kill()
        raise RuntimeError(f"subprocess failed to boot: {line!r} ({cmd[3]})")
    return proc, int(match.group(1))


def start_server(args: argparse.Namespace, log_dir: str | None) -> tuple[subprocess.Popen, int]:
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--servers", str(args.servers),
        "--tau", str(args.tau),
        "--q-slots", str(args.q_slots),
    ]
    if log_dir:
        cmd += ["--log-dir", log_dir]
    return spawn_ready(cmd)


def start_gateway(backend_port: int) -> tuple[subprocess.Popen, int]:
    # the bench measures decision identity and throughput, not the edge
    # limiter: a replay must never be 429'd into divergence
    return spawn_ready(
        [
            sys.executable, "-m", "repro.cli", "gateway",
            "--backend-port", str(backend_port),
            "--rate", "1000000", "--burst", "1000000",
        ]
    )


def start_follower(primary_port: int, work: Path) -> tuple[subprocess.Popen, int]:
    return spawn_ready(
        [
            sys.executable, "-m", "repro.cli", "follow",
            "--primary-port", str(primary_port),
            "--poll-interval", "0.05",
            "--log-dir", str(work / "follower-log"),
        ]
    )


def loadgen(args: argparse.Namespace, port: int, out: Path, **extra: object) -> dict:
    """Run ``repro loadgen --transport http`` and return its report."""
    cmd = [
        sys.executable, "-m", "repro.cli", "loadgen",
        "--port", str(port),
        "--transport", "http",
        "--swf", extra.pop("swf"),
        "--seed", str(args.seed),
        "--window", str(args.window),
        "--out", str(out),
    ]
    for flag, value in extra.items():
        if value is True:
            cmd.append(f"--{flag.replace('_', '-')}")
        elif value is not None:
            cmd += [f"--{flag.replace('_', '-')}", str(value)]
    completed = subprocess.run(cmd, env=_ENV, capture_output=True, text=True)
    if completed.returncode not in (0, 1):  # 1 = ledger violations, reported below
        raise RuntimeError(
            f"loadgen failed rc={completed.returncode}:\n{completed.stderr}"
        )
    if not out.exists():
        raise RuntimeError(
            f"loadgen wrote no report (rc={completed.returncode}):\n{completed.stderr}"
        )
    return json.loads(out.read_text())


def rpc(port: int, message: dict) -> dict:
    """One blocking NDJSON request/response (promote, follower_status)."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall((json.dumps(message) + "\n").encode())
        chunks = b""
        while not chunks.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks += chunk
    return json.loads(chunks)


def scrape_metrics(port: int) -> str:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics", timeout=10) as fh:
        return fh.read().decode("utf-8")


def counter_value(metrics: str, name: str) -> float:
    """Sum every labeled sample of one counter family."""
    total = 0.0
    for line in metrics.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            total += float(line.rsplit(" ", 1)[1])
    return total


def wait_follower_caught_up(ctl_port: int, timeout: float = 30.0) -> dict:
    deadline = time.perf_counter() + timeout
    status = rpc(ctl_port, {"op": "follower_status"})
    while time.perf_counter() < deadline:
        status = rpc(ctl_port, {"op": "follower_status"})
        if status.get("hwm", 0) > 0 and status.get("primary_up"):
            return status
        time.sleep(0.1)
    return status


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    work = Path(tempfile.mkdtemp(prefix="bench_gateway_"))
    trace = work / "trace.swf"

    generate = subprocess.run(
        [sys.executable, "-m", "repro.cli", "generate",
         "--jobs", str(args.jobs), "--seed", str(args.seed), "--out", str(trace)],
        env=_ENV, capture_output=True, text=True,
    )
    if generate.returncode != 0:
        raise RuntimeError(f"trace generation failed:\n{generate.stderr}")

    # ---- run A: uninterrupted, full trace over HTTP ------------------
    server_a, server_a_port = start_server(args, log_dir=None)
    gateway_a, gateway_a_port = start_gateway(server_a_port)
    t0 = time.perf_counter()
    report_a = loadgen(args, gateway_a_port, work / "run_a.json", swf=str(trace))
    wall_a = time.perf_counter() - t0
    metrics = scrape_metrics(gateway_a_port)
    requests_seen = counter_value(metrics, "repro_gateway_requests_total")
    metrics_ok = (
        requests_seen >= args.jobs  # data-plane requests (+ the status call)
        and "repro_gateway_request_seconds{quantile=" in metrics
        and "repro_gateway_backend_up 1" in metrics
    )
    gateway_a.send_signal(signal.SIGTERM)
    rpc(server_a_port, {"op": "shutdown"})
    server_a.wait(timeout=30)
    gateway_a.wait(timeout=30)

    # ---- run B: SIGKILL the primary mid-trace, promote the follower --
    half = args.jobs // 2
    primary, primary_port = start_server(args, log_dir=str(work / "primary-log"))
    follower, follower_ctl = start_follower(primary_port, work)
    gateway_b, gateway_b_port = start_gateway(primary_port)

    t0 = time.perf_counter()
    report_b1 = loadgen(
        args, gateway_b_port, work / "run_b1.json",
        swf=str(trace), limit=half, ledger_out=str(work / "ledger.json"),
    )
    caught_up = wait_follower_caught_up(follower_ctl)
    primary.send_signal(signal.SIGKILL)  # no snapshot, no drain, no goodbye
    primary.wait(timeout=30)
    gateway_b.send_signal(signal.SIGTERM)
    gateway_b.wait(timeout=30)

    promoted = rpc(follower_ctl, {"op": "promote"})
    if not promoted.get("ok"):
        raise RuntimeError(f"promote failed: {promoted}")
    gateway_b2, gateway_b2_port = start_gateway(int(promoted["port"]))
    report_b2 = loadgen(
        args, gateway_b2_port, work / "run_b2.json",
        swf=str(trace), offset=half, ledger_in=str(work / "ledger.json"),
    )
    wall_b = time.perf_counter() - t0
    final_status = rpc(int(promoted["port"]), {"op": "status"})
    gateway_b2.send_signal(signal.SIGTERM)
    rpc(int(promoted["port"]), {"op": "shutdown"})
    follower.wait(timeout=30)
    gateway_b2.wait(timeout=30)

    checksums_agree = (
        report_a["accepted_checksum"]
        == report_a["server_status"]["accepted_checksum"]
        == final_status["accepted_checksum"]
        == report_b2["accepted_checksum"]
    )
    violations = (
        report_a["violations_total"]
        + report_b1["violations_total"]
        + report_b2["violations_total"]
    )
    result = {
        "bench": "gateway",
        "jobs": args.jobs,
        "seed": args.seed,
        "servers": args.servers,
        "uninterrupted": {
            "wall_s": round(wall_a, 3),
            "throughput_rps": round(args.jobs / wall_a, 1),
            "accepted": report_a["accepted"],
            "rejected": report_a["rejected"],
            "checksum": report_a["accepted_checksum"],
            "metrics_requests_total": requests_seen,
            "metrics_ok": metrics_ok,
        },
        "kill_promote": {
            "wall_s": round(wall_b, 3),
            "promoted_hwm": promoted["hwm"],
            "follower_hwm_at_kill": caught_up.get("hwm"),
            "checksum": report_b2["accepted_checksum"],
        },
        "violations_total": violations,
        "checksums_agree": checksums_agree,
        "ok": bool(checksums_agree and violations == 0 and metrics_ok),
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    return 0 if result["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
