"""Atomic cross-site co-allocation (paper Section 1's multi-site setting).

Run with::

    python examples/cross_site_federation.py

Three university sites federate their clusters.  A large campaign needs
more servers than any single site has free, so the broker probes all
sites for the same window, plans a distribution, and commits everywhere
atomically — with rollback if a local user races in between probe and
commit.  This is the DUROC problem the paper's introduction opens with,
solved on top of the co-allocation core.
"""

from repro.apps.multisite import MultiSiteBroker, Site
from repro.core.types import Request
from repro.facade import CoAllocationScheduler

HOUR = 3600.0


def make_federation() -> tuple[MultiSiteBroker, list[Site]]:
    sites = [
        Site("alpha", CoAllocationScheduler(n_servers=32, tau=900.0, q_slots=96)),
        Site("beta", CoAllocationScheduler(n_servers=16, tau=900.0, q_slots=96)),
        Site("gamma", CoAllocationScheduler(n_servers=16, tau=900.0, q_slots=96)),
    ]
    return MultiSiteBroker(sites, delta_t=900.0, r_max=24), sites


def show(tag, alloc) -> None:
    if alloc is None:
        print(f"{tag}: refused (no window within the retry ladder)")
        return
    parts = ", ".join(f"{name}:{a.nr}" for name, a in sorted(alloc.parts.items()))
    print(f"{tag}: {alloc.total_servers} servers [{alloc.start / HOUR:.2f}h, "
          f"{alloc.end / HOUR:.2f}h) across {{{parts}}}")


def main() -> None:
    broker, sites = make_federation()

    # local users load the sites first — the broker must work around them
    sites[0].scheduler.schedule(Request(qr=0.0, sr=0.0, lr=2 * HOUR, nr=20, rid=1))
    sites[1].scheduler.schedule(Request(qr=0.0, sr=0.0, lr=1 * HOUR, nr=10, rid=2))
    print("local load: alpha 20/32 busy for 2h, beta 10/16 busy for 1h\n")

    # a 40-server campaign: no single site can host it
    show("campaign A (40 servers, 3h)", broker.allocate(40, duration=3 * HOUR))

    # a second campaign right behind it
    show("campaign B (48 servers, 2h)", broker.allocate(48, duration=2 * HOUR))

    # spread requirement: at least 8 servers per participating site
    show(
        "campaign C (24 servers, min 8/site)",
        broker.allocate(24, duration=HOUR, min_per_site=8),
    )

    # an impossible request fails cleanly, leaving no partial holds
    show("campaign D (70 servers)", broker.allocate(70, duration=HOUR))
    for site in sites:
        site.scheduler.calendar.validate()
    print("\nall site calendars consistent (no orphaned holds)")


if __name__ == "__main__":
    main()
