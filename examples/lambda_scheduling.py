"""Lambda scheduling on an optical grid (paper Section 3.2).

Run with::

    python examples/lambda_scheduling.py

A PCE admits lightpaths on a small national research backbone (an
NSFNET-like topology): every request must hold the *same wavelength on
every link of its path* for the same window — co-allocation in its
purest form.  Shows wavelength continuity, alternate routing, window
flexibility, and teardown.
"""

import networkx as nx

from repro.apps.lambda_grid import LambdaGridScheduler

HOUR = 3600.0


def nsfnet() -> nx.Graph:
    """A trimmed NSFNET-style topology (8 nodes, 10 links)."""
    g = nx.Graph()
    g.add_edges_from(
        [
            ("Seattle", "SaltLake"),
            ("Seattle", "Chicago"),
            ("SaltLake", "Denver"),
            ("Denver", "Chicago"),
            ("Denver", "Houston"),
            ("Chicago", "Pittsburgh"),
            ("Houston", "Atlanta"),
            ("Pittsburgh", "NewYork"),
            ("Atlanta", "Pittsburgh"),
            ("Atlanta", "NewYork"),
        ]
    )
    return g


def describe(lp) -> str:
    return (f"λ{lp.wavelength} on {'-'.join(lp.path)} "
            f"[{lp.start / HOUR:.1f}h, {lp.end / HOUR:.1f}h)")


def main() -> None:
    pce = LambdaGridScheduler(nsfnet(), n_wavelengths=2, k_paths=3)

    # An eScience transfer: Seattle -> New York, 3 hours, starting now.
    lp1 = pce.request_lightpath("Seattle", "NewYork", duration=3 * HOUR, window_start=0.0)
    print(f"transfer 1: {describe(lp1)}")

    # A second transfer on the same pair: same path, other wavelength.
    lp2 = pce.request_lightpath("Seattle", "NewYork", duration=3 * HOUR, window_start=0.0)
    print(f"transfer 2: {describe(lp2)}")

    # Third demand: both wavelengths busy on the shortest path; the PCE
    # routes around or slides within the requested window.
    lp3 = pce.request_lightpath(
        "Seattle", "NewYork", duration=2 * HOUR, window_start=0.0, window_end=6 * HOUR
    )
    print(f"transfer 3: {describe(lp3)}")

    # Show per-link pressure on the Chicago-Pittsburgh trunk.
    util = pce.link_utilization("Chicago", "Pittsburgh", 0.0, 3 * HOUR)
    print(f"Chicago-Pittsburgh wavelength-time booked (first 3h): {util:.0%}")

    # Transfer 1 finishes early: tear it down and admit a blocked demand.
    pce.release_lightpath(lp1.rid)
    lp4 = pce.request_lightpath("SaltLake", "Pittsburgh", duration=HOUR, window_start=0.0)
    print(f"transfer 4 (after teardown): {describe(lp4)}")


if __name__ == "__main__":
    main()
