"""Online co-allocation vs batch scheduling, in miniature (Section 5.1).

Run with::

    python examples/batch_vs_online.py [n_jobs]

Replays one synthetic KTH-style workload through the online co-allocator
and all three batch baselines, then prints the headline comparison the
paper's evaluation builds on: mean/median/max waits, acceptance,
utilization, and the small-job temporal penalty.
"""

import sys

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import make_scheduler
from repro.metrics.report import format_table
from repro.metrics.stats import summarize, temporal_penalty_by_duration
from repro.sim.driver import run_simulation
from repro.workloads.archive import generate_workload


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    config = ExperimentConfig(n_jobs=n_jobs)
    requests = generate_workload("KTH", n_jobs=n_jobs, seed=7)
    print(f"replaying {n_jobs} KTH-style jobs through four schedulers...\n")

    rows = []
    for kind in ("online", "easy", "conservative", "fcfs"):
        result = run_simulation(make_scheduler(kind, "KTH", config), requests)
        s = summarize(result.records)
        lefts, pen = temporal_penalty_by_duration(result.records, 1.0, 20.0)
        small_pen = float(np.nanmean(pen[lefts < 2.0]))
        rows.append(
            [
                kind,
                f"{s.mean_wait:.2f}",
                f"{s.median_wait:.2f}",
                f"{s.max_wait:.1f}",
                f"{s.acceptance_rate:.1%}",
                f"{result.utilization:.1%}",
                f"{small_pen:.2f}",
            ]
        )
    print(
        format_table(
            ["scheduler", "mean W (h)", "median W (h)", "max W (h)",
             "accepted", "utilization", "small-job P^l"],
            rows,
        )
    )
    print(
        "\nThe online algorithm bounds its delay at R_max*Δt (it rejects "
        "rather than queue forever); the batch baselines accept everything "
        "but grow long tails."
    )


if __name__ == "__main__":
    main()
