"""Deadline-driven scientific workflow (paper Sections 1 and 3).

Run with::

    python examples/weather_workflow.py

A LEAD-style severe-weather pipeline — the paper's canonical example of a
"deadline-driven scientific application [requiring] simultaneous access
to multiple resources and predictable completion times".  The whole DAG
is committed at submission via advance reservations, so the forecast
team knows every stage's schedule up front; an infeasible deadline is
refused atomically rather than discovered mid-run.
"""

from repro.apps.workflow import Stage, WorkflowScheduler

HOUR = 3600.0


def forecast_pipeline() -> list[Stage]:
    """Ingest radar data, run an ensemble of simulations, merge, render."""
    return [
        Stage("ingest", nr=4, lr=0.5 * HOUR),
        Stage("assimilate", nr=8, lr=1.0 * HOUR, depends_on=("ingest",)),
        Stage("member-1", nr=16, lr=2.0 * HOUR, depends_on=("assimilate",)),
        Stage("member-2", nr=16, lr=2.0 * HOUR, depends_on=("assimilate",)),
        Stage("member-3", nr=16, lr=2.5 * HOUR, depends_on=("assimilate",)),
        Stage("ensemble-merge", nr=8, lr=0.5 * HOUR,
              depends_on=("member-1", "member-2", "member-3")),
        Stage("visualize", nr=4, lr=0.5 * HOUR, depends_on=("ensemble-merge",)),
    ]


def show(plan) -> None:
    for name, sp in sorted(plan.stages.items(), key=lambda kv: kv[1].start):
        print(f"  {name:<15} {sp.allocation.nr:>3} nodes   "
              f"[{sp.start / HOUR:5.2f}h, {sp.end / HOUR:5.2f}h)")
    print(f"  critical path: {' -> '.join(plan.critical_path())}")
    print(f"  makespan: {plan.makespan / HOUR:.2f}h, done by {plan.end / HOUR:.2f}h")


def main() -> None:
    cluster = WorkflowScheduler(n_servers=48, tau=900.0, q_slots=96)

    # The 18:00 UTC forecast must be out within 8 hours.
    print("forecast run (deadline 8h):")
    forecast = cluster.submit(forecast_pipeline(), deadline=8 * HOUR)
    show(forecast)

    # A second team submits the same pipeline; the ensemble members
    # contend for nodes, so their run lands later — but the schedule is
    # known *now*.
    print("\nsecond team's run (no deadline):")
    second = cluster.submit(forecast_pipeline())
    show(second)

    # An emergency nowcast with an impossible deadline is refused whole:
    # no orphaned stages hold nodes.
    rushed = cluster.submit(forecast_pipeline(), deadline=3 * HOUR)
    print(f"\nemergency run with 3h deadline: "
          f"{'accepted' if rushed else 'refused atomically (critical path needs 5h)'}")

    print(f"\ncluster utilization over the planned span: "
          f"{cluster.utilization(0.0, second.end):.1%}")


if __name__ == "__main__":
    main()
