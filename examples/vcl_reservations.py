"""VCL scenario (paper Section 3.1): classes + HPC on one machine pool.

Run with::

    python examples/vcl_reservations.py

A university lab with 32 machines serves (a) instructors advance-booking
desktop images for class hours and (b) researchers grabbing HPC batches
on demand.  When a class slot is taken, the manager answers with
alternative times — the exact workflow the paper describes for VCL.
"""

from repro.apps.vcl import ReservationDenied, VCLManager

HOUR = 3600.0


def main() -> None:
    vcl = VCLManager(n_machines=32, setup_time=900.0)  # 15 min image deploy

    # Monday 9:00: CS101 books 20 desktops for a 2-hour lab at 14:00.
    cs101 = vcl.reserve_desktops(20, start=14 * HOUR, duration=2 * HOUR)
    print(f"CS101: {cs101.count} desktops at t=14h, token {cs101.access_token}")

    # A statistics course wants 16 desktops in the same window — denied,
    # but the manager suggests times that actually work.
    try:
        vcl.reserve_desktops(16, start=14 * HOUR, duration=2 * HOUR)
    except ReservationDenied as denied:
        alternatives = [f"{t / HOUR:.2f}h" for t in denied.alternatives]
        print(f"STAT210 denied at 14h; alternatives: {', '.join(alternatives)}")
        retry_at = denied.alternatives[0]
        stat210 = vcl.reserve_desktops(16, start=retry_at, duration=2 * HOUR)
        print(f"STAT210: rebooked at t={stat210.start / HOUR:.2f}h "
              f"on machines {stat210.machines[:4]}...")

    # Meanwhile a grad student needs 12 nodes for a 6-hour sweep, ASAP.
    hpc = vcl.request_hpc(12, duration=6 * HOUR)
    print(f"HPC batch: {hpc.count} nodes from t={hpc.start / HOUR:.2f}h "
          f"to t={hpc.end / HOUR:.2f}h")

    # The afternoon fills up; show how booked the pool is.
    print(f"pool utilization 12h-18h: {vcl.pool_utilization(12 * HOUR, 18 * HOUR):.1%}")

    # CS101 is cancelled (snow day) — capacity comes back.
    vcl.cancel(cs101)
    print(f"after cancelling CS101:   {vcl.pool_utilization(12 * HOUR, 18 * HOUR):.1%}")


if __name__ == "__main__":
    main()
