"""Quickstart: co-allocating servers with advance reservations.

Run with::

    python examples/quickstart.py

Walks through the public API end to end: on-demand allocation, an
advance reservation, the Δt retry ladder, a temporal range search with
post-processing, and cancellation.
"""

from repro import CoAllocationScheduler, Request

HOUR = 3600.0


def main() -> None:
    # A 16-server system; 15-minute slots; a 24-hour scheduling horizon.
    # Δt defaults to τ and R_max to Q/2, the paper's settings.
    sched = CoAllocationScheduler(n_servers=16, tau=900.0, q_slots=96)

    # --- on-demand request: 4 servers for 2 hours, starting now ---------
    alloc = sched.schedule(Request(qr=0.0, sr=0.0, lr=2 * HOUR, nr=4, rid=1))
    print(f"job 1 -> servers {alloc.servers} at t={alloc.start:.0f}s "
          f"({alloc.attempts} attempt(s), delay {alloc.delay:.0f}s)")

    # --- advance reservation: 8 servers, tomorrow's demo at 10:00 -------
    demo_start = 10 * HOUR
    alloc2 = sched.schedule(
        Request(qr=0.0, sr=demo_start, lr=1 * HOUR, nr=8, rid=2)
    )
    print(f"job 2 -> {alloc2.nr} servers reserved for t={alloc2.start / HOUR:.0f}h")

    # --- saturate the system and watch the Δt ladder kick in ------------
    alloc3 = sched.schedule(Request(qr=0.0, sr=0.0, lr=2 * HOUR, nr=14, rid=3))
    print(f"job 3 (14 servers) -> starts at t={alloc3.start / HOUR:.2f}h "
          f"after {alloc3.attempts} attempts (the first windows were full)")

    # --- range search: who is free 6h-8h from now? ----------------------
    free = sched.range_search(6 * HOUR, 8 * HOUR)
    print(f"range search [6h, 8h): {len(free)} servers free")
    # pick two specific servers (post-processing is up to the caller)
    chosen = sorted(free, key=lambda p: p.server)[:2]
    alloc4 = sched.commit(chosen, 6 * HOUR, 8 * HOUR, rid=4)
    print(f"job 4 -> committed servers {alloc4.servers} from the range search")

    # --- deadlines -------------------------------------------------------
    rush = sched.schedule(
        Request(qr=0.0, sr=0.0, lr=HOUR, nr=2, rid=5, deadline=4 * HOUR)
    )
    verdict = f"meets its {4:.0f}h deadline (ends {rush.end / HOUR:.1f}h)" if rush else "rejected"
    print(f"job 5 -> {verdict}")

    # --- utilization and cancellation ------------------------------------
    print(f"utilization over the first 12h: {sched.utilization(0, 12 * HOUR):.1%}")
    sched.cancel(2)
    print(f"after cancelling job 2:         {sched.utilization(0, 12 * HOUR):.1%}")


if __name__ == "__main__":
    main()
