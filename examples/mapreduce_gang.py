"""MapReduce gang allocation (paper Sections 1 and 6).

Run with::

    python examples/mapreduce_gang.py

A Hadoop-on-demand-style master plans jobs on a 32-node cluster: the map
wave is co-allocated immediately, the reduce wave is advance-reserved at
the shuffle barrier, and the pair commits atomically — exactly the
"allocate compute nodes for multiple map and reduce instances" use case
the paper motivates.
"""

from repro.apps.mapreduce import MapReduceScheduler

MIN = 60.0


def show(name: str, plan) -> None:
    if plan is None:
        print(f"{name}: declined (gang cannot be placed)")
        return
    m, r = plan.map_allocation, plan.reduce_allocation
    print(
        f"{name}: maps {m.nr} nodes [{m.start / MIN:.0f}m, {m.end / MIN:.0f}m) | "
        f"shuffle at {plan.shuffle_time / MIN:.0f}m | "
        f"reducers {r.nr} nodes [{r.start / MIN:.0f}m, {r.end / MIN:.0f}m) | "
        f"makespan {plan.makespan / MIN:.0f}m"
    )


def main() -> None:
    mr = MapReduceScheduler(n_nodes=32, slots_per_node=2)

    # A log-crunching job: 48 map tasks (24 nodes), 8 reducers.
    etl = mr.submit(n_map_tasks=48, map_duration=20 * MIN,
                    n_reduce_tasks=8, reduce_duration=10 * MIN)
    show("ETL job", etl)

    # An ad-hoc analytics query lands while ETL runs; it shares the pool.
    query = mr.submit(n_map_tasks=16, map_duration=15 * MIN,
                      n_reduce_tasks=4, reduce_duration=5 * MIN)
    show("ad-hoc query", query)

    # A deadline-driven report: must finish within 90 minutes.
    report = mr.submit(n_map_tasks=64, map_duration=30 * MIN,
                       n_reduce_tasks=16, reduce_duration=15 * MIN,
                       deadline=90 * MIN)
    show("deadline report", report)

    # An impossible deadline is declined atomically — no orphaned map wave.
    impossible = mr.submit(n_map_tasks=64, map_duration=30 * MIN,
                           n_reduce_tasks=16, reduce_duration=15 * MIN,
                           deadline=40 * MIN)
    show("impossible deadline", impossible)

    horizon = max(p.end for p in (etl, query, report) if p)
    print(f"cluster utilization to {horizon / MIN:.0f}m: "
          f"{mr.cluster_utilization(0.0, horizon):.1%}")


if __name__ == "__main__":
    main()
